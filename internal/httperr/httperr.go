// Package httperr maps engine errors onto HTTP status codes, shared by the
// JSON API (internal/server) and the HTML UI (internal/webui) so both
// surfaces classify failures identically: the client's fault (4xx) is told
// apart from the server's (5xx) by inspecting the error chain, never by
// string matching.
package httperr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"cbvr/internal/admission"
	"cbvr/internal/core"
	"cbvr/internal/cvj"
	"cbvr/internal/vstore"
)

// StatusOf classifies err:
//
//   - *http.MaxBytesError → 413 (the request body hit the server's size
//     cap; checked first because the truncation it causes also looks like
//     a malformed container further down the chain)
//   - core.ErrEmptyName → 400
//   - core.ErrNotFound → 404
//   - admission.ShedError → 503 when the server shed the request under
//     overload pressure, 429 when the request's own class was simply at
//     capacity (the client should pace itself)
//   - context cancellation / deadline → 503 (the request was abandoned,
//     its deadline ran out, or the server is shutting down; nothing was
//     committed)
//   - os.ErrDeadlineExceeded → 408 (the CLIENT stalled: the body-read
//     watchdog cut a connection that stopped sending; checked before the
//     format errors because a watchdog cut also truncates the stream)
//   - vstore.ErrReadOnly → 503 (the store is degraded read-only after a
//     write fault; retry against a restarted process, not this one)
//   - core.ErrOverloaded → 503 (the engine refused an unbounded search
//     under brownout; retry when load clears)
//   - cvj.ErrFormat or io.ErrUnexpectedEOF → 400 (the uploaded bytes are
//     not a valid container, or were cut off mid-stream)
//   - anything else → 500 (storage or internal fault; not the client)
//
// A nil error is 200.
func StatusOf(err error) int {
	var mbe *http.MaxBytesError
	var shed *admission.ShedError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &shed):
		if shed.Overload {
			return http.StatusServiceUnavailable
		}
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrEmptyName):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, os.ErrDeadlineExceeded):
		return http.StatusRequestTimeout
	case errors.Is(err, vstore.ErrReadOnly), errors.Is(err, core.ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, cvj.ErrFormat), errors.Is(err, io.ErrUnexpectedEOF):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// StatusOfStored classifies errors from operations over already-stored
// data (reindex, delete): no request bytes are involved, so a container
// format error means the STORE is corrupt — the server's fault (500),
// never the client's (400). Only addressing (404) and abandonment (503)
// remain client-visible classes.
func StatusOfStored(err error) int {
	var shed *admission.ShedError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &shed):
		if shed.Overload {
			return http.StatusServiceUnavailable
		}
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, vstore.ErrReadOnly), errors.Is(err, core.ErrOverloaded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// RetryAfter reports whether err warrants a Retry-After header: a
// degraded store (recovers only on restart), an engine overload refusal,
// or an admission shed (which carries its own computed estimate — see
// RetryAfterHint).
func RetryAfter(err error) bool {
	var shed *admission.ShedError
	return errors.Is(err, vstore.ErrReadOnly) ||
		errors.Is(err, core.ErrOverloaded) ||
		errors.As(err, &shed)
}

// RetryAfterHint extracts the computed Retry-After duration an error
// carries, if any. Only admission sheds embed one; every other
// retryable error defers to the caller's estimator (the admission
// controller's per-class RetryAfter).
func RetryAfterHint(err error) (time.Duration, bool) {
	var shed *admission.ShedError
	if errors.As(err, &shed) {
		return shed.RetryAfter, true
	}
	return 0, false
}

// DegradedRetryAfter floors the degraded-store backoff: a degraded store
// recovers only when the process restarts and recovery settles durable
// state, so clients gain nothing by returning sooner, whatever the
// admission controller's live estimate says.
const DegradedRetryAfter = 30 * time.Second

// ApplyRetryAfter attaches the Retry-After header err warrants, if any.
// The duration is the error's own computed hint when it carries one
// (admission sheds), otherwise the caller's estimate (the admission
// controller's per-class value; zero if the caller has no estimator).
// Degraded-store errors are floored at DegradedRetryAfter.
func ApplyRetryAfter(h http.Header, err error, estimate time.Duration) {
	if !RetryAfter(err) {
		return
	}
	d := estimate
	if hint, ok := RetryAfterHint(err); ok {
		d = hint
	}
	if errors.Is(err, vstore.ErrReadOnly) && d < DegradedRetryAfter {
		d = DegradedRetryAfter
	}
	h.Set("Retry-After", strconv.Itoa(admission.RetryAfterSeconds(d)))
}

// Message renders err for the response body. The 413 case names the limit
// so clients learn the cap without reading server config; other statuses
// pass the error text through.
func Message(err error) string {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return fmt.Sprintf("request body exceeds the %d-byte upload limit", mbe.Limit)
	}
	return err.Error()
}
