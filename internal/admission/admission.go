// Package admission is the server's weighted admission controller: every
// request class (search, delete, ingest, reindex) gets a concurrency limit
// and a small bounded wait queue, and the controller sheds work it cannot
// serve promptly — lowest-priority classes first — with an error that
// carries a *computed* Retry-After derived from observed service times and
// current queue depth, never a hard-coded constant.
//
// The controller is also the server's load signal: Level() folds live
// occupancy of the search class and the recent p95 search latency into a
// single [0,1] pressure value. The server feeds that value to the engine's
// search brownout (internal/core), which shrinks the fused cell-probe
// budget toward its recall floor while load is high and restores exact
// behaviour the moment the level returns to zero.
//
// Everything here is pure bookkeeping under one mutex: no I/O, no
// allocation beyond the waiter nodes, and the only blocking point is the
// queued waiter's select, which runs strictly outside the lock.
package admission

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Class identifies one admission class. The numeric order IS the priority
// order: lower values are more important and shed later. Searches are the
// product (they stay up through overload, degraded only in quality via the
// brownout); deletes are small and free capacity; ingests are heavy but
// client-retryable; reindex is pure background maintenance and is the
// first thing to go.
type Class int

const (
	Search Class = iota
	Delete
	Ingest
	Reindex
	NumClasses // array bound, not a class
)

// String names the class for headers, stats and error text.
func (c Class) String() string {
	switch c {
	case Search:
		return "search"
	case Delete:
		return "delete"
	case Ingest:
		return "ingest"
	case Reindex:
		return "reindex"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Config tunes the controller. The zero value selects every default.
type Config struct {
	// Limit bounds concurrently admitted requests per class; <= 0 selects
	// the class default (searches and ingests scale with GOMAXPROCS,
	// reindex runs one at a time).
	Limit [NumClasses]int
	// Queue bounds waiters per class once the limit is reached; < 0 means
	// no queue (shed immediately), 0 selects the class default. Ingest
	// defaults to no queue: a queued upload is a client holding a body
	// stream open against a server that cannot read it yet, which is
	// exactly the slow-loris shape the watchdog exists to kill — turning
	// the upload away with 429 is cheaper for both sides.
	Queue [NumClasses]int
	// ShedAt is the Level() at or above which the class is refused
	// outright (priority shedding, 503); <= 0 selects the class default.
	// Values > 1 mean "never shed by level" (Level saturates at 1).
	ShedAt [NumClasses]float64
	// MaxWait caps the time a request may sit queued before it is shed;
	// <= 0 selects 2s. Queued work past this age would blow its deadline
	// anyway, and shedding it keeps the queue a buffer, not a backlog.
	MaxWait time.Duration
	// LatencyBudget is the search service time Level() treats as the
	// ceiling: the latency component engages once the recent p95 exceeds
	// it and saturates at twice it. <= 0 selects 1s.
	LatencyBudget time.Duration
	// LatencyWindow bounds how long completed-search samples count toward
	// the p95; <= 0 selects 10s.
	LatencyWindow time.Duration
	// ShedWindow is how long after a shed the controller still reports
	// Shedding() — the healthz hysteresis. <= 0 selects 5s.
	ShedWindow time.Duration
	// Now is the clock; nil selects time.Now. Tests inject a fake clock to
	// step the latency window and shed hysteresis deterministically.
	Now func() time.Time
}

// withDefaults resolves zero Config fields to their documented defaults.
func (cfg Config) withDefaults() Config {
	procs := runtime.GOMAXPROCS(0)
	defLimit := [NumClasses]int{
		Search:  2 * procs,
		Delete:  procs,
		Ingest:  2 * procs,
		Reindex: 1,
	}
	// Default queues are deliberately small: a queue deeper than the limit
	// just converts shed latency into deadline misses.
	defQueue := [NumClasses]int{
		Search:  2 * procs,
		Delete:  2,
		Ingest:  -1, // no queue; see the Queue doc comment
		Reindex: 1,
	}
	defShedAt := [NumClasses]float64{
		Search:  2.0,  // never: quality degrades via brownout instead
		Delete:  0.97, // sheds only at full saturation
		Ingest:  0.90,
		Reindex: 0.50, // background work is the first casualty
	}
	for c := Class(0); c < NumClasses; c++ {
		if cfg.Limit[c] <= 0 {
			cfg.Limit[c] = defLimit[c]
		}
		if cfg.Queue[c] == 0 {
			cfg.Queue[c] = defQueue[c]
		}
		if cfg.Queue[c] < 0 {
			cfg.Queue[c] = 0
		}
		if cfg.ShedAt[c] <= 0 {
			cfg.ShedAt[c] = defShedAt[c]
		}
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Second
	}
	if cfg.LatencyBudget <= 0 {
		cfg.LatencyBudget = time.Second
	}
	if cfg.LatencyWindow <= 0 {
		cfg.LatencyWindow = 10 * time.Second
	}
	if cfg.ShedWindow <= 0 {
		cfg.ShedWindow = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// ShedError is the admission refusal. Overload distinguishes the two HTTP
// shapes: true means the server is shedding the class to protect
// higher-priority work (503 Service Unavailable — the server's state, not
// the client's rate), false means the class itself is at capacity with a
// full queue (429 Too Many Requests — the client should pace itself).
// RetryAfter is computed from the class's observed service time and the
// backlog ahead of a new arrival; it is never a constant.
type ShedError struct {
	Class      Class
	Overload   bool
	RetryAfter time.Duration
	Reason     string
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("%s admission shed: %s (retry after %s)", e.Class, e.Reason, e.RetryAfter)
}

// Ticket is one admitted request; Release returns its slot and feeds the
// observed service time back into the Retry-After estimator.
type Ticket struct {
	c     *Controller
	class Class
	start time.Time
	once  sync.Once
}

// Release frees the slot. Safe to call more than once; only the first call
// counts.
func (t *Ticket) Release() {
	t.once.Do(func() { t.c.release(t.class, t.start) })
}

// waiter is one queued request. granted flips under Controller.mu exactly
// once: either the releaser hands it a slot (and closes ch), or the waiter
// abandons the queue on context death / MaxWait.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// latSample is one completed search used by the p95 load component.
type latSample struct {
	at time.Time
	d  time.Duration
}

// maxLatSamples bounds the latency ring; at typical search rates this
// covers far more than LatencyWindow, and the bound keeps a traffic storm
// from growing the slice without limit.
const maxLatSamples = 512

// Controller is the admission state machine. One instance serves all
// classes; create it with New.
//
//cbvrvet:lockorder noio Controller.mu
type Controller struct {
	cfg Config

	mu       sync.Mutex
	inflight [NumClasses]int
	waiters  [NumClasses][]*waiter
	sheds    [NumClasses]int64
	// ewma tracks per-class service time (seconds, α=0.2): the basis of
	// the computed Retry-After.
	ewma [NumClasses]float64
	// lastShed + shedReason drive Shedding() hysteresis.
	lastShed   time.Time
	shedReason string
	// lat is a ring of recent completed-search latencies for the p95
	// component of Level().
	lat    []latSample
	latPos int
}

// New builds a Controller from cfg (zero fields take defaults).
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Limit reports the configured concurrency limit for a class.
func (c *Controller) Limit(class Class) int { return c.cfg.Limit[class] }

// Acquire admits one request of the given class, queueing briefly when the
// class is at its limit. It returns a *ShedError when the request is shed
// (by priority under load, a full queue, or queue-wait expiry) and the
// context error when ctx dies while queued.
func (c *Controller) Acquire(ctx context.Context, class Class) (*Ticket, error) {
	c.mu.Lock()
	now := c.cfg.Now()
	if lvl := c.levelLocked(now); lvl >= c.cfg.ShedAt[class] {
		err := c.shedLocked(class, now, true,
			fmt.Sprintf("load level %.2f at or above the %s shed threshold %.2f", lvl, class, c.cfg.ShedAt[class]))
		c.mu.Unlock()
		return nil, err
	}
	if c.inflight[class] < c.cfg.Limit[class] {
		c.inflight[class]++
		c.mu.Unlock()
		return &Ticket{c: c, class: class, start: now}, nil
	}
	if len(c.waiters[class]) >= c.cfg.Queue[class] {
		err := c.shedLocked(class, now, false,
			fmt.Sprintf("%s at capacity (%d in flight, %d queued)", class, c.inflight[class], len(c.waiters[class])))
		c.mu.Unlock()
		return nil, err
	}
	w := &waiter{ch: make(chan struct{})}
	c.waiters[class] = append(c.waiters[class], w)
	c.mu.Unlock()

	timer := time.NewTimer(c.cfg.MaxWait)
	defer timer.Stop()
	select {
	case <-w.ch:
		return &Ticket{c: c, class: class, start: c.cfg.Now()}, nil
	case <-ctx.Done():
		if c.abandon(class, w) {
			// Grant raced the cancellation: the slot is ours, so hand it
			// to the caller — its next ctx check fails fast anyway, and
			// releasing through the normal path keeps the books exact.
			return &Ticket{c: c, class: class, start: c.cfg.Now()}, nil
		}
		return nil, ctx.Err()
	case <-timer.C:
		if c.abandon(class, w) {
			return &Ticket{c: c, class: class, start: c.cfg.Now()}, nil
		}
		c.mu.Lock()
		err := c.shedLocked(class, c.cfg.Now(), true,
			fmt.Sprintf("%s queued longer than %s", class, c.cfg.MaxWait))
		c.mu.Unlock()
		return nil, err
	}
}

// abandon removes w from its queue; it reports true when a grant won the
// race (the caller then owns a slot it must use or Release).
func (c *Controller) abandon(class Class, w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.granted {
		return true
	}
	q := c.waiters[class]
	for i, cand := range q {
		if cand == w {
			c.waiters[class] = append(q[:i], q[i+1:]...)
			break
		}
	}
	return false
}

// release returns a slot, updates the service-time EWMA and the search
// latency ring, and hands the slot to the oldest waiter if one is queued.
func (c *Controller) release(class Class, start time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	if d := now.Sub(start); d >= 0 {
		sec := d.Seconds()
		if c.ewma[class] == 0 {
			c.ewma[class] = sec
		} else {
			c.ewma[class] = 0.8*c.ewma[class] + 0.2*sec
		}
		if class == Search {
			s := latSample{at: now, d: d}
			if len(c.lat) < maxLatSamples {
				c.lat = append(c.lat, s)
			} else {
				c.lat[c.latPos] = s
				c.latPos = (c.latPos + 1) % maxLatSamples
			}
		}
	}
	c.inflight[class]--
	if q := c.waiters[class]; len(q) > 0 && c.inflight[class] < c.cfg.Limit[class] {
		w := q[0]
		c.waiters[class] = q[1:]
		w.granted = true
		c.inflight[class]++
		close(w.ch)
	}
}

// shedLocked records a shed and builds the refusal with its computed
// Retry-After. Callers hold c.mu.
func (c *Controller) shedLocked(class Class, now time.Time, overload bool, reason string) *ShedError {
	c.sheds[class]++
	c.lastShed = now
	c.shedReason = reason
	return &ShedError{
		Class:      class,
		Overload:   overload,
		RetryAfter: c.retryAfterLocked(class),
		Reason:     reason,
	}
}

// retryAfterLocked estimates when a NEW arrival of the class would find a
// slot: the backlog ahead of it (current queue plus one full occupancy
// round) served at the observed per-slot service time, divided across the
// class's parallelism. Clamped to [1s, 60s] — below a second the client
// would busy-loop, above a minute the estimate is noise.
func (c *Controller) retryAfterLocked(class Class) time.Duration {
	svc := c.ewma[class]
	if svc <= 0 {
		svc = 0.5 // no completions observed yet; assume a cheap op
	}
	backlog := float64(len(c.waiters[class]) + 1)
	est := time.Duration(backlog * svc / float64(c.cfg.Limit[class]) * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// RetryAfter exposes the computed estimate for callers that must attach a
// Retry-After to refusals originating outside the controller (degraded
// store, engine overload).
func (c *Controller) RetryAfter(class Class) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retryAfterLocked(class)
}

// Level reports the current load pressure in [0,1]: the max of a live
// search-occupancy component (engages at 75% of limit+queue, saturates at
// 150%) and a recent-p95-latency component (engages at the latency budget,
// saturates at twice it). Zero means no pressure — the brownout contract
// requires search behaviour to be bit-identical to the unloaded engine at
// level 0.
func (c *Controller) Level() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.levelLocked(c.cfg.Now())
}

func (c *Controller) levelLocked(now time.Time) float64 {
	busy := float64(c.inflight[Search] + len(c.waiters[Search]))
	occ := busy / float64(c.cfg.Limit[Search])
	const occLow, occHigh = 0.75, 1.5
	lvl := clamp01((occ - occLow) / (occHigh - occLow))
	if p95 := c.p95Locked(now); p95 > 0 {
		lvl = math.Max(lvl, clamp01(float64(p95)/float64(c.cfg.LatencyBudget)-1))
	}
	return lvl
}

// p95Locked computes the p95 of search latencies inside LatencyWindow.
func (c *Controller) p95Locked(now time.Time) time.Duration {
	cutoff := now.Add(-c.cfg.LatencyWindow)
	fresh := make([]time.Duration, 0, len(c.lat))
	for _, s := range c.lat {
		if s.at.After(cutoff) {
			fresh = append(fresh, s.d)
		}
	}
	if len(fresh) == 0 {
		return 0
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	return fresh[(len(fresh)*95)/100]
}

// Shedding reports whether the controller shed anything within ShedWindow,
// with the most recent reason — the healthz "shedding" state.
func (c *Controller) Shedding() (bool, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.lastShed.IsZero() && c.cfg.Now().Sub(c.lastShed) < c.cfg.ShedWindow {
		return true, c.shedReason
	}
	return false, ""
}

// ClassSnapshot is one class's row in Snapshot.
type ClassSnapshot struct {
	Class         string  `json:"class"`
	Limit         int     `json:"limit"`
	InFlight      int     `json:"in_flight"`
	Queued        int     `json:"queued"`
	Shed          int64   `json:"shed"`
	AvgServiceMs  float64 `json:"avg_service_ms"`
	RetryAfterSec int     `json:"retry_after_sec"`
}

// Snapshot is the operational view served by /api/v1/stats.
type Snapshot struct {
	Level    float64         `json:"level"`
	Shedding bool            `json:"shedding"`
	Reason   string          `json:"reason,omitempty"`
	Classes  []ClassSnapshot `json:"classes"`
}

// Snapshot captures the controller state for stats reporting.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	snap := Snapshot{Level: c.levelLocked(now)}
	if !c.lastShed.IsZero() && now.Sub(c.lastShed) < c.cfg.ShedWindow {
		snap.Shedding = true
		snap.Reason = c.shedReason
	}
	for class := Class(0); class < NumClasses; class++ {
		snap.Classes = append(snap.Classes, ClassSnapshot{
			Class:         class.String(),
			Limit:         c.cfg.Limit[class],
			InFlight:      c.inflight[class],
			Queued:        len(c.waiters[class]),
			Shed:          c.sheds[class],
			AvgServiceMs:  c.ewma[class] * 1000,
			RetryAfterSec: RetryAfterSeconds(c.retryAfterLocked(class)),
		})
	}
	return snap
}

// RetryAfterSeconds renders a computed Retry-After duration as the integer
// seconds value the HTTP header carries, rounding up so the client never
// retries before the estimate.
func RetryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	return int(math.Ceil(d.Seconds()))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
