package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock steps time by hand so latency windows, shed hysteresis and
// EWMA service times are deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestCapacityShedIs429Shape fills a class and checks the refusal: a full
// class with no queue sheds immediately with Overload=false (the 429
// shape) and a computed Retry-After of at least a second.
func TestCapacityShedIs429Shape(t *testing.T) {
	c := New(Config{
		Limit: [NumClasses]int{Ingest: 2},
		Queue: [NumClasses]int{Ingest: -1},
	})
	ctx := context.Background()
	t1, err := c.Acquire(ctx, Ingest)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.Acquire(ctx, Ingest)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Acquire(ctx, Ingest)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("capacity shed took %v; must fail fast", elapsed)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want ShedError, got %v", err)
	}
	if shed.Overload {
		t.Fatalf("capacity shed must not be the overload (503) shape: %+v", shed)
	}
	if shed.Class != Ingest {
		t.Fatalf("shed class = %v, want Ingest", shed.Class)
	}
	if shed.RetryAfter < time.Second || shed.RetryAfter > time.Minute {
		t.Fatalf("RetryAfter %v outside [1s, 60s]", shed.RetryAfter)
	}
	t1.Release()
	t3, err := c.Acquire(ctx, Ingest)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	t3.Release()
	t2.Release()
}

// TestQueueGrantsFIFO parks two waiters behind a held slot and checks the
// releaser hands the slot to the oldest first.
func TestQueueGrantsFIFO(t *testing.T) {
	c := New(Config{
		Limit: [NumClasses]int{Search: 1},
		Queue: [NumClasses]int{Search: 2},
	})
	ctx := context.Background()
	holder, err := c.Acquire(ctx, Search)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	ready := make(chan struct{}, 2)
	for i := 1; i <= 2; i++ {
		// Stagger enqueue so the queue order is deterministic.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ready <- struct{}{}
			tk, err := c.Acquire(ctx, Search)
			if err != nil {
				t.Errorf("queued acquire %d: %v", i, err)
				return
			}
			order <- i
			tk.Release()
		}(i)
		<-ready
		waitForQueued(t, c, Search, i)
	}
	holder.Release()
	wg.Wait()
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("grant order %d,%d; want 1,2", first, second)
	}
}

// waitForQueued polls the snapshot until the class shows n waiters.
func waitForQueued(t *testing.T, c *Controller, class Class, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Snapshot().Classes[class].Queued >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters", n)
}

// TestQueueWaitExpiryShedsOverload parks a waiter past MaxWait and checks
// it is shed with the overload (503) shape.
func TestQueueWaitExpiryShedsOverload(t *testing.T) {
	c := New(Config{
		Limit:   [NumClasses]int{Search: 1},
		Queue:   [NumClasses]int{Search: 1},
		MaxWait: 30 * time.Millisecond,
	})
	ctx := context.Background()
	holder, err := c.Acquire(ctx, Search)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Release()
	_, err = c.Acquire(ctx, Search)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want ShedError after MaxWait, got %v", err)
	}
	if !shed.Overload {
		t.Fatalf("queue-wait expiry must be the overload shape: %+v", shed)
	}
	if snap := c.Snapshot(); snap.Classes[Search].Queued != 0 {
		t.Fatalf("expired waiter left in queue: %+v", snap.Classes[Search])
	}
}

// TestContextCancelWhileQueued cancels a queued request and checks the
// context error comes back and the queue is cleaned up.
func TestContextCancelWhileQueued(t *testing.T) {
	c := New(Config{
		Limit: [NumClasses]int{Search: 1},
		Queue: [NumClasses]int{Search: 1},
	})
	holder, err := c.Acquire(context.Background(), Search)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, Search)
		done <- err
	}()
	waitForQueued(t, c, Search, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire after cancel: %v, want context.Canceled", err)
	}
	if snap := c.Snapshot(); snap.Classes[Search].Queued != 0 {
		t.Fatalf("cancelled waiter left in queue: %+v", snap.Classes[Search])
	}
	// The held slot must still grant cleanly after the ghost is gone.
	holder.Release()
	tk, err := c.Acquire(context.Background(), Search)
	if err != nil {
		t.Fatal(err)
	}
	tk.Release()
}

// TestLevelAndPriorityShed drives the latency component of the load
// signal with a fake clock: slow searches push Level to 1, which sheds
// reindex/ingest/delete (in that threshold order) while search itself is
// still admitted.
func TestLevelAndPriorityShed(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Limit:         [NumClasses]int{Search: 8, Ingest: 2, Delete: 2, Reindex: 1},
		LatencyBudget: time.Second,
		LatencyWindow: 10 * time.Second,
		Now:           clk.now,
	})
	ctx := context.Background()
	if lvl := c.Level(); lvl != 0 {
		t.Fatalf("idle level = %v, want 0", lvl)
	}
	// Complete a few searches at 3× the latency budget: p95/budget - 1 = 2
	// clamps the level to 1.
	for i := 0; i < 5; i++ {
		tk, err := c.Acquire(ctx, Search)
		if err != nil {
			t.Fatal(err)
		}
		clk.advance(3 * time.Second)
		tk.Release()
	}
	if lvl := c.Level(); lvl != 1 {
		t.Fatalf("level after slow searches = %v, want 1", lvl)
	}
	for _, class := range []Class{Reindex, Ingest, Delete} {
		_, err := c.Acquire(ctx, class)
		var shed *ShedError
		if !errors.As(err, &shed) || !shed.Overload {
			t.Fatalf("%v at level 1: err=%v, want overload ShedError", class, err)
		}
	}
	tk, err := c.Acquire(ctx, Search)
	if err != nil {
		t.Fatalf("search must never be level-shed: %v", err)
	}
	tk.Release()
	if ok, reason := c.Shedding(); !ok || reason == "" {
		t.Fatalf("Shedding() = %v %q after level sheds", ok, reason)
	}
	// Load clears: the samples age out of the window and the shed
	// hysteresis lapses.
	clk.advance(time.Minute)
	if lvl := c.Level(); lvl != 0 {
		t.Fatalf("level after window expiry = %v, want 0", lvl)
	}
	if ok, _ := c.Shedding(); ok {
		t.Fatal("Shedding() still true after ShedWindow lapsed")
	}
	if _, err := c.Acquire(ctx, Reindex); err != nil {
		t.Fatalf("reindex after load cleared: %v", err)
	}
}

// TestComputedRetryAfter pins the estimator: with an observed 10s service
// time, limit 1 and one queued waiter, a new arrival is told to come back
// in backlog × service / limit = 2 × 10s = 20s.
func TestComputedRetryAfter(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Limit: [NumClasses]int{Reindex: 1},
		Queue: [NumClasses]int{Reindex: 1},
		Now:   clk.now,
	})
	ctx := context.Background()
	// Teach the EWMA a 10s service time with one completed reindex.
	tk, err := c.Acquire(ctx, Reindex)
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(10 * time.Second)
	tk.Release()

	holder, err := c.Acquire(ctx, Reindex)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Release()
	queued := make(chan struct{})
	go func() {
		tk, err := c.Acquire(ctx, Reindex)
		if err == nil {
			tk.Release()
		}
		close(queued)
	}()
	waitForQueued(t, c, Reindex, 1)

	_, err = c.Acquire(ctx, Reindex)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want ShedError, got %v", err)
	}
	if shed.RetryAfter != 20*time.Second {
		t.Fatalf("RetryAfter = %v, want 20s (2 backlog × 10s service / limit 1)", shed.RetryAfter)
	}
	if got := RetryAfterSeconds(shed.RetryAfter); got != 20 {
		t.Fatalf("RetryAfterSeconds = %d, want 20", got)
	}
	holder.Release()
	<-queued
}

// TestRetryAfterClamped keeps the estimate inside [1s, 60s] at both ends.
func TestRetryAfterClamped(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Limit: [NumClasses]int{Ingest: 1},
		Now:   clk.now,
	})
	// No completions yet: the default service guess still yields >= 1s.
	if d := c.RetryAfter(Ingest); d < time.Second {
		t.Fatalf("cold RetryAfter = %v, want >= 1s", d)
	}
	// A pathological 10-minute service time clamps at the 60s ceiling.
	tk, err := c.Acquire(context.Background(), Ingest)
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(10 * time.Minute)
	tk.Release()
	if d := c.RetryAfter(Ingest); d != time.Minute {
		t.Fatalf("clamped RetryAfter = %v, want 60s", d)
	}
}

// TestReleaseIdempotent double-releases a ticket and checks the books
// still balance.
func TestReleaseIdempotent(t *testing.T) {
	c := New(Config{Limit: [NumClasses]int{Delete: 1}})
	tk, err := c.Acquire(context.Background(), Delete)
	if err != nil {
		t.Fatal(err)
	}
	tk.Release()
	tk.Release()
	if got := c.Snapshot().Classes[Delete].InFlight; got != 0 {
		t.Fatalf("in-flight after double release = %d, want 0", got)
	}
	tk2, err := c.Acquire(context.Background(), Delete)
	if err != nil {
		t.Fatal(err)
	}
	tk2.Release()
}

// TestSnapshotShape checks the stats view carries every class with its
// configured limit.
func TestSnapshotShape(t *testing.T) {
	c := New(Config{})
	snap := c.Snapshot()
	if len(snap.Classes) != int(NumClasses) {
		t.Fatalf("snapshot has %d classes, want %d", len(snap.Classes), NumClasses)
	}
	for class := Class(0); class < NumClasses; class++ {
		row := snap.Classes[class]
		if row.Class != class.String() {
			t.Fatalf("class %d named %q, want %q", class, row.Class, class.String())
		}
		if row.Limit <= 0 {
			t.Fatalf("class %v default limit = %d, want > 0", class, row.Limit)
		}
	}
	if snap.Level != 0 || snap.Shedding {
		t.Fatalf("idle snapshot: level=%v shedding=%v", snap.Level, snap.Shedding)
	}
}
