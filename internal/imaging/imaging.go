// Package imaging provides the raster substrate for the CBVR system: an
// 8-bit RGB image type, an 8-bit grayscale type, colour conversions,
// rescaling, histograms, morphology and thresholding.
//
// It stands in for the Java Advanced Imaging (JAI) operations the paper's
// pseudo-code calls (PlanarImage, RenderedImage, LookupTableJAI, band
// combine, dilate, erode, fuzziness threshold). Conversions to and from the
// standard library's image.Image are provided so frames can round-trip
// through real JPEG bytes.
package imaging

import (
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/jpeg"
	"io"
)

// Image is an 8-bit RGB raster stored row-major as R,G,B triples.
// The zero value is an empty image; use New to allocate pixels.
type Image struct {
	W, H int
	Pix  []uint8 // len == W*H*3
}

// New returns a w×h RGB image with all pixels black.
// It panics if w or h is negative.
func New(w, h int) *Image {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imaging: invalid dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*3)}
}

// Bounds reports the image dimensions as an image.Rectangle anchored at the
// origin.
func (im *Image) Bounds() image.Rectangle {
	return image.Rect(0, 0, im.W, im.H)
}

// In reports whether (x, y) lies inside the image.
func (im *Image) In(x, y int) bool {
	return x >= 0 && y >= 0 && x < im.W && y < im.H
}

// At returns the RGB components at (x, y). It panics if the point is out of
// bounds, matching slice indexing semantics.
func (im *Image) At(x, y int) (r, g, b uint8) {
	i := (y*im.W + x) * 3
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set assigns the RGB components at (x, y).
func (im *Image) Set(x, y int, r, g, b uint8) {
	i := (y*im.W + x) * 3
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Fill sets every pixel to the given colour.
func (im *Image) Fill(r, g, b uint8) {
	for i := 0; i < len(im.Pix); i += 3 {
		im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
	}
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]uint8, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// Equal reports whether two images have identical dimensions and pixels.
func (im *Image) Equal(other *Image) bool {
	if im.W != other.W || im.H != other.H {
		return false
	}
	for i := range im.Pix {
		if im.Pix[i] != other.Pix[i] {
			return false
		}
	}
	return true
}

// Gray is an 8-bit single-channel raster stored row-major.
type Gray struct {
	W, H int
	Pix  []uint8 // len == W*H
}

// NewGray returns a w×h grayscale image with all pixels zero.
func NewGray(w, h int) *Gray {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imaging: invalid dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the intensity at (x, y).
func (g *Gray) At(x, y int) uint8 { return g.Pix[y*g.W+x] }

// Set assigns the intensity at (x, y).
func (g *Gray) Set(x, y int, v uint8) { g.Pix[y*g.W+x] = v }

// In reports whether (x, y) lies inside the image.
func (g *Gray) In(x, y int) bool {
	return x >= 0 && y >= 0 && x < g.W && y < g.H
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	out := &Gray{W: g.W, H: g.H, Pix: make([]uint8, len(g.Pix))}
	copy(out.Pix, g.Pix)
	return out
}

// FromImage converts any image.Image to an RGB raster.
func FromImage(src image.Image) *Image {
	b := src.Bounds()
	out := New(b.Dx(), b.Dy())
	// Fast path for the common decoder output types.
	switch s := src.(type) {
	case *image.RGBA:
		for y := 0; y < out.H; y++ {
			so := s.PixOffset(b.Min.X, b.Min.Y+y)
			do := y * out.W * 3
			for x := 0; x < out.W; x++ {
				out.Pix[do] = s.Pix[so]
				out.Pix[do+1] = s.Pix[so+1]
				out.Pix[do+2] = s.Pix[so+2]
				so += 4
				do += 3
			}
		}
		return out
	case *image.YCbCr:
		for y := 0; y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				yi := s.YOffset(b.Min.X+x, b.Min.Y+y)
				ci := s.COffset(b.Min.X+x, b.Min.Y+y)
				r, g, bl := color.YCbCrToRGB(s.Y[yi], s.Cb[ci], s.Cr[ci])
				out.Set(x, y, r, g, bl)
			}
		}
		return out
	}
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			r, g, bl, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Set(x, y, uint8(r>>8), uint8(g>>8), uint8(bl>>8))
		}
	}
	return out
}

// ToRGBA converts the raster to a standard library *image.RGBA with full
// opacity.
func (im *Image) ToRGBA() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	si, di := 0, 0
	for p := 0; p < im.W*im.H; p++ {
		out.Pix[di] = im.Pix[si]
		out.Pix[di+1] = im.Pix[si+1]
		out.Pix[di+2] = im.Pix[si+2]
		out.Pix[di+3] = 0xff
		si += 3
		di += 4
	}
	return out
}

// DefaultJPEGQuality is used by EncodeJPEG when quality <= 0.
const DefaultJPEGQuality = 85

// EncodeJPEG writes the image as JPEG. quality <= 0 selects
// DefaultJPEGQuality.
func (im *Image) EncodeJPEG(w io.Writer, quality int) error {
	if im.W == 0 || im.H == 0 {
		return errors.New("imaging: cannot encode empty image")
	}
	if quality <= 0 {
		quality = DefaultJPEGQuality
	}
	return jpeg.Encode(w, im.ToRGBA(), &jpeg.Options{Quality: quality})
}

// DecodeJPEG reads a JPEG image into an RGB raster.
func DecodeJPEG(r io.Reader) (*Image, error) {
	src, err := jpeg.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("imaging: decode jpeg: %w", err)
	}
	return FromImage(src), nil
}
