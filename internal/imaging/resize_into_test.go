package imaging

import (
	"testing"
)

func patternImage(w, h int, seed uint8) *Image {
	im := New(w, h)
	for i := range im.Pix {
		im.Pix[i] = uint8(i*31) + seed
	}
	return im
}

// TestRescaleIntoMatchesRescale pins RescaleInto to Rescale bit for bit
// across shapes, including up- and down-scaling.
func TestRescaleIntoMatchesRescale(t *testing.T) {
	dims := [][2]int{{1, 1}, {7, 3}, {96, 72}, {300, 300}, {301, 299}, {640, 480}}
	dst := &Image{}
	for _, d := range dims {
		src := patternImage(d[0], d[1], 5)
		want := src.Rescale(300, 300)
		got := src.RescaleInto(dst, 300, 300)
		if got != dst {
			t.Fatalf("%dx%d: RescaleInto did not return dst", d[0], d[1])
		}
		if !got.Equal(want) {
			t.Errorf("%dx%d: RescaleInto diverges from Rescale", d[0], d[1])
		}
	}
}

// TestRescaleIntoReusesBuffer verifies the pooling contract: once dst has
// capacity, further rescales allocate nothing and leak nothing from the
// previous frame.
func TestRescaleIntoReusesBuffer(t *testing.T) {
	dst := &Image{}
	a := patternImage(96, 72, 1)
	b := patternImage(128, 64, 200)
	a.RescaleInto(dst, 300, 300)
	buf := &dst.Pix[0]
	allocs := testing.AllocsPerRun(50, func() {
		b.RescaleInto(dst, 300, 300)
	})
	if allocs != 0 {
		t.Errorf("RescaleInto with warm dst allocated %.1f times per run, want 0", allocs)
	}
	if &dst.Pix[0] != buf {
		t.Error("RescaleInto replaced the destination buffer despite sufficient capacity")
	}
	if want := b.Rescale(300, 300); !dst.Equal(want) {
		t.Error("reused buffer carries stale content")
	}
}

// TestRescaleIntoCountsAsRescale keeps the RescaleCalls invariant tests
// meaningful: a pooled rescale is still one rescale.
func TestRescaleIntoCountsAsRescale(t *testing.T) {
	src := patternImage(64, 48, 9)
	dst := &Image{}
	start := RescaleCalls()
	src.RescaleInto(dst, 300, 300)
	if n := RescaleCalls() - start; n != 1 {
		t.Errorf("RescaleInto counted %d rescales, want 1", n)
	}
}

// TestRescaleIntoEmptySourceClears ensures an empty source zero-fills a
// recycled destination instead of leaving the previous frame behind.
func TestRescaleIntoEmptySourceClears(t *testing.T) {
	dst := &Image{}
	patternImage(32, 32, 77).RescaleInto(dst, 16, 16)
	(&Image{}).RescaleInto(dst, 16, 16)
	for i, px := range dst.Pix {
		if px != 0 {
			t.Fatalf("pixel byte %d = %d after empty-source rescale, want 0", i, px)
		}
	}
}
