package imaging

import "sync/atomic"

// rescaleCalls counts (*Image).Rescale invocations process-wide. It backs
// RescaleCalls, the test hook that verifies the shared analysis-plane
// pipeline rescales each ingested key frame exactly once.
var rescaleCalls atomic.Int64

// RescaleCalls reports how many times (*Image).Rescale has run in this
// process. Tests subtract two readings to count the rescales a code path
// performs; the counter has no other consumers.
func RescaleCalls() int64 { return rescaleCalls.Load() }

// Rescale resizes the image to w×h using nearest-neighbour interpolation,
// the paper's InterpolationNearest. It panics if w or h is not positive.
func (im *Image) Rescale(w, h int) *Image {
	return im.RescaleInto(&Image{}, w, h)
}

// RescaleInto is Rescale writing into dst: dst's pixel buffer is reused
// when it has the capacity, so a pooled destination makes steady-state
// rescaling allocation-free (the ingest and re-index pipelines recycle
// analysis rasters this way). Every pixel of dst is overwritten — a
// recycled buffer cannot leak stale content. It returns dst and counts as
// one rescale in RescaleCalls, exactly like Rescale.
func (im *Image) RescaleInto(dst *Image, w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("imaging: Rescale requires positive dimensions")
	}
	rescaleCalls.Add(1)
	dst.W, dst.H = w, h
	n := w * h * 3
	if cap(dst.Pix) < n {
		dst.Pix = make([]uint8, n)
	} else {
		dst.Pix = dst.Pix[:n]
	}
	if im.W == 0 || im.H == 0 {
		for i := range dst.Pix {
			dst.Pix[i] = 0
		}
		return dst
	}
	for y := 0; y < h; y++ {
		sy := y * im.H / h
		for x := 0; x < w; x++ {
			sx := x * im.W / w
			si := (sy*im.W + sx) * 3
			di := (y*w + x) * 3
			dst.Pix[di] = im.Pix[si]
			dst.Pix[di+1] = im.Pix[si+1]
			dst.Pix[di+2] = im.Pix[si+2]
		}
	}
	return dst
}

// RescaleBilinear resizes the image to w×h with bilinear interpolation. It
// is used where smooth downsampling matters (e.g. thumbnails in the web UI).
func (im *Image) RescaleBilinear(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("imaging: RescaleBilinear requires positive dimensions")
	}
	out := New(w, h)
	if im.W == 0 || im.H == 0 {
		return out
	}
	if im.W == 1 && im.H == 1 {
		r, g, b := im.At(0, 0)
		out.Fill(r, g, b)
		return out
	}
	xr := float64(im.W-1) / float64(maxInt(w-1, 1))
	yr := float64(im.H-1) / float64(maxInt(h-1, 1))
	for y := 0; y < h; y++ {
		sy := float64(y) * yr
		y0 := int(sy)
		y1 := y0 + 1
		if y1 >= im.H {
			y1 = im.H - 1
		}
		fy := sy - float64(y0)
		for x := 0; x < w; x++ {
			sx := float64(x) * xr
			x0 := int(sx)
			x1 := x0 + 1
			if x1 >= im.W {
				x1 = im.W - 1
			}
			fx := sx - float64(x0)
			for c := 0; c < 3; c++ {
				p00 := float64(im.Pix[(y0*im.W+x0)*3+c])
				p01 := float64(im.Pix[(y0*im.W+x1)*3+c])
				p10 := float64(im.Pix[(y1*im.W+x0)*3+c])
				p11 := float64(im.Pix[(y1*im.W+x1)*3+c])
				top := p00 + (p01-p00)*fx
				bot := p10 + (p11-p10)*fx
				out.Pix[(y*w+x)*3+c] = clamp255(top + (bot-top)*fy)
			}
		}
	}
	return out
}

// Rescale resizes a grayscale raster with nearest-neighbour sampling.
func (g *Gray) Rescale(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic("imaging: Rescale requires positive dimensions")
	}
	out := NewGray(w, h)
	if g.W == 0 || g.H == 0 {
		return out
	}
	for y := 0; y < h; y++ {
		sy := y * g.H / h
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = g.Pix[sy*g.W+x*g.W/w]
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
