package imaging

import (
	"math/rand"
	"testing"
)

func randomGray(rng *rand.Rand, w, h int) *Gray {
	g := NewGray(w, h)
	rng.Read(g.Pix)
	return g
}

// Gabor filtering depends on (*Gray).Rescale (300×300 gray plane →
// 64×64 filter raster); these pin its nearest-neighbour semantics at the
// edges.

func TestGrayRescaleIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{1, 1}, {7, 3}, {64, 64}} {
		src := randomGray(rng, dims[0], dims[1])
		dst := src.Rescale(dims[0], dims[1])
		if dst.W != src.W || dst.H != src.H {
			t.Fatalf("%dx%d: identity rescale changed dims to %dx%d", src.W, src.H, dst.W, dst.H)
		}
		for i := range src.Pix {
			if dst.Pix[i] != src.Pix[i] {
				t.Fatalf("%dx%d: identity rescale changed pixel %d", src.W, src.H, i)
			}
		}
		// A fresh copy, not an alias.
		dst.Pix[0] ^= 0xff
		if src.Pix[0] == dst.Pix[0] {
			t.Fatalf("%dx%d: identity rescale aliases the source", src.W, src.H)
		}
	}
}

func TestGrayRescaleFrom1x1(t *testing.T) {
	src := NewGray(1, 1)
	src.Pix[0] = 173
	dst := src.Rescale(5, 9)
	if dst.W != 5 || dst.H != 9 {
		t.Fatalf("dims %dx%d", dst.W, dst.H)
	}
	for i, v := range dst.Pix {
		if v != 173 {
			t.Fatalf("pixel %d = %d, want the single source value", i, v)
		}
	}
	one := src.Rescale(1, 1)
	if one.Pix[0] != 173 {
		t.Errorf("1x1 → 1x1 = %d", one.Pix[0])
	}
}

func TestGrayRescaleTo1x1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := randomGray(rng, 13, 7)
	dst := src.Rescale(1, 1)
	// Nearest-neighbour picks the source pixel at (0*13/1, 0*7/1) = (0,0).
	if dst.Pix[0] != src.Pix[0] {
		t.Errorf("1x1 downscale = %d, want top-left %d", dst.Pix[0], src.Pix[0])
	}
}

func TestGrayRescaleNonSquare(t *testing.T) {
	// 4×2 checkerboard-ish source with distinct values per cell.
	src := NewGray(4, 2)
	copy(src.Pix, []uint8{10, 20, 30, 40, 50, 60, 70, 80})
	up := src.Rescale(8, 4)
	// Every destination pixel must equal its nearest source pixel
	// (sx = x*W/w, sy = y*H/h).
	for y := 0; y < up.H; y++ {
		for x := 0; x < up.W; x++ {
			want := src.Pix[(y*src.H/up.H)*src.W+x*src.W/up.W]
			if got := up.Pix[y*up.W+x]; got != want {
				t.Fatalf("upscale (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
	down := src.Rescale(2, 1)
	if down.Pix[0] != 10 || down.Pix[1] != 30 {
		t.Errorf("downscale = %v, want [10 30]", down.Pix)
	}
}

// Down-then-up by the same integer factor must reproduce the sampled
// grid exactly (nearest-neighbour has no interpolation error).
func TestGrayRescaleDownUpSampledGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randomGray(rng, 32, 16)
	down := src.Rescale(16, 8)
	for y := 0; y < down.H; y++ {
		for x := 0; x < down.W; x++ {
			if down.Pix[y*down.W+x] != src.Pix[(y*2)*src.W+x*2] {
				t.Fatalf("downscale (%d,%d) not the sampled source pixel", x, y)
			}
		}
	}
	up := down.Rescale(32, 16)
	if up.W != 32 || up.H != 16 {
		t.Fatalf("dims %dx%d", up.W, up.H)
	}
	// Each 2×2 block of the upscale replicates its downsampled pixel.
	for y := 0; y < up.H; y++ {
		for x := 0; x < up.W; x++ {
			if up.Pix[y*up.W+x] != down.Pix[(y/2)*down.W+x/2] {
				t.Fatalf("upscale (%d,%d) not a block replicate", x, y)
			}
		}
	}
}

func TestGrayRescalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0x5 rescale")
		}
	}()
	NewGray(3, 3).Rescale(0, 5)
}

// TestBoxMorphologyMatchesGeneric pins the separable 3×3 box passes to
// the generic kernel-walk morphology on random rasters (binary and full
// grayscale) across sizes that stress the border handling.
func TestBoxMorphologyMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k := PaperKernel()
	for trial := 0; trial < 60; trial++ {
		w := 1 + rng.Intn(20)
		h := 1 + rng.Intn(20)
		g := NewGray(w, h)
		if trial%2 == 0 {
			for i := range g.Pix {
				if rng.Intn(2) == 1 {
					g.Pix[i] = 255
				}
			}
		} else {
			rng.Read(g.Pix)
		}
		for name, pair := range map[string][2]*Gray{
			"dilate":    {g.Dilate(k), g.BoxDilate3()},
			"erode":     {g.Erode(k), g.BoxErode3()},
			"closeopen": {g.CloseOpen(k), g.CloseOpenBox3()},
		} {
			want, got := pair[0], pair[1]
			for i := range want.Pix {
				if want.Pix[i] != got.Pix[i] {
					t.Fatalf("trial %d (%dx%d) %s: pixel %d: generic %d, box %d",
						trial, w, h, name, i, want.Pix[i], got.Pix[i])
				}
			}
		}
	}
}
