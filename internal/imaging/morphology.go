package imaging

// The paper's §4.8 preprocessing uses a 5×5 kernel whose active part is the
// central 3×3 block of ones:
//
//	0 0 0 0 0
//	0 1 1 1 0
//	0 1 1 1 0
//	0 1 1 1 0
//	0 0 0 0 0
//
// Kernel represents such a binary structuring element by its active offsets.
type Kernel struct {
	// Offsets holds (dx, dy) pairs of active kernel cells relative to the
	// anchor pixel.
	Offsets [][2]int
}

// PaperKernel returns the structuring element from §4.8 (a 3×3 box embedded
// in a 5×5 matrix — equivalent to a plain 3×3 box around the anchor).
func PaperKernel() Kernel {
	k := Kernel{}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			k.Offsets = append(k.Offsets, [2]int{dx, dy})
		}
	}
	return k
}

// Dilate performs grayscale dilation (max filter) over the kernel support.
// Pixels outside the image are ignored.
func (g *Gray) Dilate(k Kernel) *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var best uint8
			for _, off := range k.Offsets {
				nx, ny := x+off[0], y+off[1]
				if !g.In(nx, ny) {
					continue
				}
				if v := g.Pix[ny*g.W+nx]; v > best {
					best = v
				}
			}
			out.Pix[y*g.W+x] = best
		}
	}
	return out
}

// Erode performs grayscale erosion (min filter) over the kernel support.
// Pixels outside the image are ignored.
func (g *Gray) Erode(k Kernel) *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			best := uint8(255)
			for _, off := range k.Offsets {
				nx, ny := x+off[0], y+off[1]
				if !g.In(nx, ny) {
					continue
				}
				if v := g.Pix[ny*g.W+nx]; v < best {
					best = v
				}
			}
			out.Pix[y*g.W+x] = best
		}
	}
	return out
}

// CloseOpen applies the paper's §4.8 smoothing sequence: dilate, erode,
// erode, dilate (a morphological close followed by an open) with the given
// kernel.
func (g *Gray) CloseOpen(k Kernel) *Gray {
	return g.Dilate(k).Erode(k).Erode(k).Dilate(k)
}
