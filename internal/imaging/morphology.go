package imaging

// The paper's §4.8 preprocessing uses a 5×5 kernel whose active part is the
// central 3×3 block of ones:
//
//	0 0 0 0 0
//	0 1 1 1 0
//	0 1 1 1 0
//	0 1 1 1 0
//	0 0 0 0 0
//
// Kernel represents such a binary structuring element by its active offsets.
type Kernel struct {
	// Offsets holds (dx, dy) pairs of active kernel cells relative to the
	// anchor pixel.
	Offsets [][2]int
}

// PaperKernel returns the structuring element from §4.8 (a 3×3 box embedded
// in a 5×5 matrix — equivalent to a plain 3×3 box around the anchor).
func PaperKernel() Kernel {
	k := Kernel{}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			k.Offsets = append(k.Offsets, [2]int{dx, dy})
		}
	}
	return k
}

// Dilate performs grayscale dilation (max filter) over the kernel support.
// Pixels outside the image are ignored.
func (g *Gray) Dilate(k Kernel) *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var best uint8
			for _, off := range k.Offsets {
				nx, ny := x+off[0], y+off[1]
				if !g.In(nx, ny) {
					continue
				}
				if v := g.Pix[ny*g.W+nx]; v > best {
					best = v
				}
			}
			out.Pix[y*g.W+x] = best
		}
	}
	return out
}

// Erode performs grayscale erosion (min filter) over the kernel support.
// Pixels outside the image are ignored.
func (g *Gray) Erode(k Kernel) *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			best := uint8(255)
			for _, off := range k.Offsets {
				nx, ny := x+off[0], y+off[1]
				if !g.In(nx, ny) {
					continue
				}
				if v := g.Pix[ny*g.W+nx]; v < best {
					best = v
				}
			}
			out.Pix[y*g.W+x] = best
		}
	}
	return out
}

// CloseOpen applies the paper's §4.8 smoothing sequence: dilate, erode,
// erode, dilate (a morphological close followed by an open) with the given
// kernel.
func (g *Gray) CloseOpen(k Kernel) *Gray {
	return g.Dilate(k).Erode(k).Erode(k).Dilate(k)
}

// CloseOpenBox3 is CloseOpen(PaperKernel()) through the separable box
// filters below. Identical output, ~¼ the taps.
func (g *Gray) CloseOpenBox3() *Gray {
	return g.BoxDilate3().BoxErode3().BoxErode3().BoxDilate3()
}

// BoxDilate3 performs dilation with the 3×3 box kernel (PaperKernel) as
// two separable passes: a horizontal 3-tap max, then a vertical 3-tap
// max. max is associative and commutative, so the result is identical to
// Dilate(PaperKernel()) — including at the borders, where out-of-image
// taps are ignored — at roughly a quarter of the taps and with no
// per-tap bounds checks.
func (g *Gray) BoxDilate3() *Gray {
	return g.boxFilter3(max8)
}

// BoxErode3 performs erosion with the 3×3 box kernel as two separable
// 3-tap min passes; identical to Erode(PaperKernel()).
func (g *Gray) BoxErode3() *Gray {
	return g.boxFilter3(min8)
}

func max8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

// boxFilter3 applies a separable 3×3 fold (min or max) with ignored
// out-of-image taps.
func (g *Gray) boxFilter3(fold func(a, b uint8) uint8) *Gray {
	w, h := g.W, g.H
	out := NewGray(w, h)
	if w == 0 || h == 0 {
		return out
	}
	// Horizontal pass into a scratch plane.
	tmp := make([]uint8, w*h)
	for y := 0; y < h; y++ {
		row := g.Pix[y*w : (y+1)*w]
		dst := tmp[y*w : (y+1)*w]
		if w == 1 {
			dst[0] = row[0]
			continue
		}
		dst[0] = fold(row[0], row[1])
		for x := 1; x < w-1; x++ {
			dst[x] = fold(fold(row[x-1], row[x]), row[x+1])
		}
		dst[w-1] = fold(row[w-2], row[w-1])
	}
	// Vertical pass over the horizontal result.
	if h == 1 {
		copy(out.Pix, tmp)
		return out
	}
	for x := 0; x < w; x++ {
		out.Pix[x] = fold(tmp[x], tmp[w+x])
	}
	for y := 1; y < h-1; y++ {
		above := tmp[(y-1)*w : y*w]
		cur := tmp[y*w : (y+1)*w]
		below := tmp[(y+1)*w : (y+2)*w]
		dst := out.Pix[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			dst[x] = fold(fold(above[x], cur[x]), below[x])
		}
	}
	for x := 0; x < w; x++ {
		out.Pix[(h-1)*w+x] = fold(tmp[(h-2)*w+x], tmp[(h-1)*w+x])
	}
	return out
}
