package imaging

import "math"

// HuangThreshold computes the minimum-fuzziness threshold of Huang & Wang
// (1995) over a 256-bin histogram. This is JAI's
// Histogram.getMinFuzzinessThreshold, which the paper's region-growing
// preprocessor calls to binarise frames.
//
// The returned threshold t means: pixels with intensity <= t are background
// (0) and pixels above are foreground (255). For a histogram with fewer
// than two non-empty bins the single occupied bin (or 0) is returned.
func HuangThreshold(hist [256]int) int {
	first, last := -1, -1
	for i, c := range hist {
		if c != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return 0
	}
	if first == last {
		return first
	}

	// Prefix sums of counts and weighted counts for O(1) window means.
	s := make([]float64, 257)  // s[i] = sum hist[0..i-1]
	ws := make([]float64, 257) // ws[i] = sum k*hist[k] for k in [0,i)
	for i := 0; i < 256; i++ {
		s[i+1] = s[i] + float64(hist[i])
		ws[i+1] = ws[i] + float64(i)*float64(hist[i])
	}

	// Shannon entropy function on membership values, S(x) = -x ln x -
	// (1-x) ln(1-x), with S(0)=S(1)=0.
	entropy := func(mu float64) float64 {
		if mu <= 0 || mu >= 1 {
			return 0
		}
		return -mu*math.Log(mu) - (1-mu)*math.Log(1-mu)
	}

	c := float64(last - first) // normalisation constant for |g - mu|
	bestT, bestE := first, math.MaxFloat64
	for t := first; t < last; t++ {
		// Background mean over [0, t], foreground mean over (t, 255].
		bCount := s[t+1]
		fCount := s[256] - s[t+1]
		if bCount == 0 || fCount == 0 {
			continue
		}
		mu0 := ws[t+1] / bCount
		mu1 := (ws[256] - ws[t+1]) / fCount
		var e float64
		for g := first; g <= last; g++ {
			if hist[g] == 0 {
				continue
			}
			var mu float64
			if g <= t {
				mu = 1 / (1 + math.Abs(float64(g)-mu0)/c)
			} else {
				mu = 1 / (1 + math.Abs(float64(g)-mu1)/c)
			}
			e += entropy(mu) * float64(hist[g])
		}
		if e < bestE {
			bestE, bestT = e, t
		}
	}
	return bestT
}

// Binarize maps every pixel to 0 (<= t) or 255 (> t).
func (g *Gray) Binarize(t int) *Gray {
	out := NewGray(g.W, g.H)
	for i, v := range g.Pix {
		if int(v) > t {
			out.Pix[i] = 255
		}
	}
	return out
}

// BinarizeAuto binarises with the Huang minimum-fuzziness threshold, the
// paper's preprocessing step for region growing.
func (g *Gray) BinarizeAuto() *Gray {
	return g.Binarize(HuangThreshold(g.Histogram()))
}

// OtsuThreshold computes Otsu's between-class variance threshold. It is
// provided alongside HuangThreshold for the ablation benches comparing
// binarisation choices.
func OtsuThreshold(hist [256]int) int {
	var total, sum float64
	for i, c := range hist {
		total += float64(c)
		sum += float64(i) * float64(c)
	}
	if total == 0 {
		return 0
	}
	var sumB, wB float64
	bestT, bestVar := 0, -1.0
	for t := 0; t < 256; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := total - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sum - sumB) / wF
		v := wB * wF * (mB - mF) * (mB - mF)
		if v > bestVar {
			bestVar, bestT = v, t
		}
	}
	return bestT
}
