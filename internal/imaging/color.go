package imaging

// Luma weights used throughout the paper's pseudo-code. The paper's band
// combine matrix is {0.114, 0.587, 0.299} in B,G,R order, i.e. the standard
// ITU-R BT.601 luma transform.
const (
	lumaR = 0.299
	lumaG = 0.587
	lumaB = 0.114
)

// GrayValue returns the BT.601 luma of an RGB pixel, rounded to the nearest
// integer in [0,255].
func GrayValue(r, g, b uint8) uint8 {
	v := lumaR*float64(r) + lumaG*float64(g) + lumaB*float64(b)
	iv := int(v + 0.5)
	if iv > 255 {
		iv = 255
	}
	return uint8(iv)
}

// ToGray converts the RGB raster to grayscale using the paper's band
// combine weights (0.299, 0.587, 0.114).
func (im *Image) ToGray() *Gray {
	return im.ToGrayInto(NewGray(im.W, im.H))
}

// ToGrayInto converts the RGB raster to grayscale into dst, reusing dst's
// pixel buffer when it is large enough, and returns dst resized to the
// image's dimensions. It is the allocation-free counterpart of ToGray for
// pooled buffers.
//
// This is the hottest per-frame loop after the PR 2/3 plane sharing (one
// conversion per analysed frame, streamed ingest and re-index both pay
// it per source frame), so the inner loop is unrolled four pixels at a
// time over reslices whose lengths the compiler can prove, keeping the
// twelve source reads and four stores bounds-check-free; the remainder
// tail runs the scalar loop. Per-pixel arithmetic is GrayValue either
// way, so the output is bit-identical to the scalar conversion
// (grayValueScalarReference in tests).
func (im *Image) ToGrayInto(dst *Gray) *Gray {
	n := im.W * im.H
	dst.W, dst.H = im.W, im.H
	if cap(dst.Pix) < n {
		dst.Pix = make([]uint8, n)
	} else {
		dst.Pix = dst.Pix[:n]
	}
	src := im.Pix[: n*3 : n*3]
	out := dst.Pix[:n:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s := src[i*3 : i*3+12 : i*3+12]
		o := out[i : i+4 : i+4]
		o[0] = GrayValue(s[0], s[1], s[2])
		o[1] = GrayValue(s[3], s[4], s[5])
		o[2] = GrayValue(s[6], s[7], s[8])
		o[3] = GrayValue(s[9], s[10], s[11])
	}
	for ; i < n; i++ {
		o := src[i*3 : i*3+3 : i*3+3]
		out[i] = GrayValue(o[0], o[1], o[2])
	}
	return dst
}

// ToImage converts a grayscale raster back to RGB with equal channels.
func (g *Gray) ToImage() *Image {
	out := New(g.W, g.H)
	di := 0
	for _, v := range g.Pix {
		out.Pix[di], out.Pix[di+1], out.Pix[di+2] = v, v, v
		di += 3
	}
	return out
}

// RGBToHSV converts an RGB pixel to HSV with h in [0,360), s in [0,1] and
// v in [0,1]. This mirrors java.awt.Color.RGBtoHSB scaled to degrees, which
// is what the paper's auto-correlogram quantiser uses.
func RGBToHSV(r, g, b uint8) (h, s, v float64) {
	rf, gf, bf := float64(r)/255, float64(g)/255, float64(b)/255
	max := rf
	if gf > max {
		max = gf
	}
	if bf > max {
		max = bf
	}
	min := rf
	if gf < min {
		min = gf
	}
	if bf < min {
		min = bf
	}
	v = max
	d := max - min
	if max > 0 {
		s = d / max
	}
	if d == 0 {
		return 0, s, v
	}
	switch max {
	case rf:
		h = 60 * ((gf - bf) / d)
		if h < 0 {
			h += 360
		}
	case gf:
		h = 60*((bf-rf)/d) + 120
	default:
		h = 60*((rf-gf)/d) + 240
	}
	if h >= 360 {
		h -= 360
	}
	return h, s, v
}

// HSVToRGB converts an HSV triple (h in [0,360), s,v in [0,1]) to RGB.
func HSVToRGB(h, s, v float64) (r, g, b uint8) {
	if s <= 0 {
		c := clamp255(v * 255)
		return c, c, c
	}
	for h < 0 {
		h += 360
	}
	for h >= 360 {
		h -= 360
	}
	sector := int(h / 60)
	f := h/60 - float64(sector)
	p := v * (1 - s)
	q := v * (1 - s*f)
	t := v * (1 - s*(1-f))
	var rf, gf, bf float64
	switch sector {
	case 0:
		rf, gf, bf = v, t, p
	case 1:
		rf, gf, bf = q, v, p
	case 2:
		rf, gf, bf = p, v, t
	case 3:
		rf, gf, bf = p, q, v
	case 4:
		rf, gf, bf = t, p, v
	default:
		rf, gf, bf = v, p, q
	}
	return clamp255(rf * 255), clamp255(gf * 255), clamp255(bf * 255)
}

func clamp255(v float64) uint8 {
	iv := int(v + 0.5)
	if iv < 0 {
		return 0
	}
	if iv > 255 {
		return 255
	}
	return uint8(iv)
}
