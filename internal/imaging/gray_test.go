package imaging

import (
	"math/rand"
	"testing"
)

// grayReference is the pre-unroll scalar conversion, kept as the
// bit-identity oracle for the unrolled ToGrayInto.
func grayReference(im *Image) *Gray {
	out := NewGray(im.W, im.H)
	si := 0
	for i := range out.Pix {
		out.Pix[i] = GrayValue(im.Pix[si], im.Pix[si+1], im.Pix[si+2])
		si += 3
	}
	return out
}

// TestToGrayIntoMatchesScalar checks the unrolled conversion against the
// scalar reference across sizes that hit every tail length (n mod 4 =
// 0..3), including degenerate rasters.
func TestToGrayIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dim := range [][2]int{{300, 300}, {1, 1}, {2, 1}, {3, 1}, {5, 1}, {7, 3}, {64, 64}, {97, 31}} {
		im := New(dim[0], dim[1])
		for i := range im.Pix {
			im.Pix[i] = uint8(rng.Intn(256))
		}
		want := grayReference(im)
		got := im.ToGrayInto(&Gray{})
		if got.W != want.W || got.H != want.H {
			t.Fatalf("%dx%d: got %dx%d", dim[0], dim[1], got.W, got.H)
		}
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("%dx%d: pixel %d = %d, want %d", dim[0], dim[1], i, got.Pix[i], want.Pix[i])
			}
		}
		// ToGray shares the unrolled path; spot-check it too.
		if g2 := im.ToGray(); g2.Pix[len(g2.Pix)-1] != want.Pix[len(want.Pix)-1] {
			t.Fatalf("%dx%d: ToGray tail mismatch", dim[0], dim[1])
		}
	}
}

// TestToGrayIntoReusesBuffer pins the pooling contract: a large-enough
// destination buffer is reused, a small one replaced.
func TestToGrayIntoReusesBuffer(t *testing.T) {
	im := New(8, 8)
	dst := &Gray{Pix: make([]uint8, 100)}
	orig := &dst.Pix[0]
	im.ToGrayInto(dst)
	if len(dst.Pix) != 64 || &dst.Pix[0] != orig {
		t.Fatal("ToGrayInto did not reuse a large-enough buffer")
	}
	small := &Gray{Pix: make([]uint8, 3)}
	im.ToGrayInto(small)
	if len(small.Pix) != 64 {
		t.Fatalf("ToGrayInto left len %d, want 64", len(small.Pix))
	}
}

// BenchmarkToGrayInto measures the unrolled conversion on the 300×300
// analysis raster (the per-frame cost ingest, re-index and query
// extraction all pay via features.NewPlanes).
func BenchmarkToGrayInto(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	im := New(300, 300)
	for i := range im.Pix {
		im.Pix[i] = uint8(rng.Intn(256))
	}
	dst := &Gray{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.ToGrayInto(dst)
	}
}

// BenchmarkToGrayScalarReference is the pre-unroll baseline.
func BenchmarkToGrayScalarReference(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	im := New(300, 300)
	for i := range im.Pix {
		im.Pix[i] = uint8(rng.Intn(256))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grayReference(im)
	}
}
