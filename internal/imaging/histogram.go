package imaging

// Histogram returns the 256-bin intensity histogram of the grayscale
// raster. The sum of all bins equals W*H.
func (g *Gray) Histogram() [256]int {
	var h [256]int
	for _, v := range g.Pix {
		h[v]++
	}
	return h
}

// GrayHistogram converts the image to grayscale (paper luma weights) and
// returns its 256-bin histogram. This is the histogram the range-finder
// index (§4.2) operates on.
func (im *Image) GrayHistogram() [256]int {
	var h [256]int
	si := 0
	for p := 0; p < im.W*im.H; p++ {
		h[GrayValue(im.Pix[si], im.Pix[si+1], im.Pix[si+2])]++
		si += 3
	}
	return h
}

// ChannelHistograms returns per-channel 256-bin histograms hr, hg, hb as in
// §4.5 ("hr(i), hg(i), hb(i) to represent the color domain").
func (im *Image) ChannelHistograms() (hr, hg, hb [256]int) {
	for i := 0; i < len(im.Pix); i += 3 {
		hr[im.Pix[i]]++
		hg[im.Pix[i+1]]++
		hb[im.Pix[i+2]]++
	}
	return hr, hg, hb
}

// Mean returns the average intensity of the grayscale raster, or 0 for an
// empty image.
func (g *Gray) Mean() float64 {
	if len(g.Pix) == 0 {
		return 0
	}
	var sum int64
	for _, v := range g.Pix {
		sum += int64(v)
	}
	return float64(sum) / float64(len(g.Pix))
}
