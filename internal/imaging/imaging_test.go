package imaging

import (
	"bytes"
	"image"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomImage(rng *rand.Rand, w, h int) *Image {
	im := New(w, h)
	rng.Read(im.Pix)
	return im
}

func TestNewAndSetGet(t *testing.T) {
	im := New(4, 3)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 36 {
		t.Fatalf("bad dimensions: %dx%d len %d", im.W, im.H, len(im.Pix))
	}
	im.Set(2, 1, 10, 20, 30)
	r, g, b := im.At(2, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Errorf("At = %d,%d,%d", r, g, b)
	}
	if !im.In(3, 2) || im.In(4, 0) || im.In(0, 3) || im.In(-1, 0) {
		t.Error("In() bounds wrong")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(-1, 5)
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomImage(rng, 8, 8)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Pix[0] ^= 0xff
	if a.Equal(b) {
		t.Error("mutated clone still equal")
	}
	if a.Equal(New(8, 9)) {
		t.Error("different dims equal")
	}
}

func TestJPEGRoundTripApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := New(32, 24)
	// Smooth content so JPEG error stays small.
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			src.Set(x, y, uint8(x*8), uint8(y*10), 128)
		}
	}
	_ = rng
	var buf bytes.Buffer
	if err := src.EncodeJPEG(&buf, 95); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJPEG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != src.W || got.H != src.H {
		t.Fatalf("dims changed: %dx%d", got.W, got.H)
	}
	var worst int
	for i := range src.Pix {
		d := int(src.Pix[i]) - int(got.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 24 {
		t.Errorf("JPEG round trip error too large: %d", worst)
	}
}

func TestEncodeEmptyImageFails(t *testing.T) {
	var buf bytes.Buffer
	if err := New(0, 0).EncodeJPEG(&buf, 80); err == nil {
		t.Error("empty encode should fail")
	}
}

func TestFromImageRGBAAndYCbCr(t *testing.T) {
	rgba := image.NewRGBA(image.Rect(0, 0, 5, 4))
	for i := range rgba.Pix {
		rgba.Pix[i] = uint8(i * 7)
	}
	im := FromImage(rgba)
	r, g, b := im.At(1, 1)
	wr, wg, wb, _ := rgba.At(1, 1).RGBA()
	if r != uint8(wr>>8) || g != uint8(wg>>8) || b != uint8(wb>>8) {
		t.Error("RGBA fast path mismatch")
	}
	// YCbCr path (as produced by jpeg decoding).
	ycc := image.NewYCbCr(image.Rect(0, 0, 4, 4), image.YCbCrSubsampleRatio420)
	for i := range ycc.Y {
		ycc.Y[i] = 128
	}
	im2 := FromImage(ycc)
	if im2.W != 4 || im2.H != 4 {
		t.Error("YCbCr conversion dims wrong")
	}
}

func TestGrayConversionWeights(t *testing.T) {
	im := New(1, 1)
	im.Set(0, 0, 255, 0, 0)
	if g := im.ToGray().At(0, 0); g != 76 { // 0.299*255 ≈ 76
		t.Errorf("red luma = %d, want 76", g)
	}
	im.Set(0, 0, 0, 255, 0)
	if g := im.ToGray().At(0, 0); g != 150 { // 0.587*255 ≈ 150
		t.Errorf("green luma = %d, want 150", g)
	}
	im.Set(0, 0, 0, 0, 255)
	if g := im.ToGray().At(0, 0); g != 29 { // 0.114*255 ≈ 29
		t.Errorf("blue luma = %d, want 29", g)
	}
}

// HSV round trip property: converting RGB→HSV→RGB returns close to the
// original (quantisation allows ±2 per channel).
func TestHSVRoundTripProperty(t *testing.T) {
	f := func(r, g, b uint8) bool {
		h, s, v := RGBToHSV(r, g, b)
		if h < 0 || h >= 360 || s < 0 || s > 1 || v < 0 || v > 1 {
			return false
		}
		rr, gg, bb := HSVToRGB(h, s, v)
		near := func(a, b uint8) bool {
			d := int(a) - int(b)
			return d >= -2 && d <= 2
		}
		return near(r, rr) && near(g, gg) && near(b, bb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRescaleDimensionsAndContent(t *testing.T) {
	src := New(10, 10)
	src.Fill(50, 100, 150)
	dst := src.Rescale(3, 7)
	if dst.W != 3 || dst.H != 7 {
		t.Fatalf("dims %dx%d", dst.W, dst.H)
	}
	r, g, b := dst.At(1, 3)
	if r != 50 || g != 100 || b != 150 {
		t.Error("uniform image changed under rescale")
	}
	// Upscale preserves corners approximately (nearest).
	src.Set(0, 0, 1, 2, 3)
	up := src.Rescale(20, 20)
	r, _, _ = up.At(0, 0)
	if r != 1 {
		t.Error("corner pixel lost on upscale")
	}
}

func TestRescaleBilinearSmooth(t *testing.T) {
	src := New(2, 1)
	src.Set(0, 0, 0, 0, 0)
	src.Set(1, 0, 200, 200, 200)
	dst := src.RescaleBilinear(5, 1)
	mid, _, _ := dst.At(2, 0)
	if mid < 80 || mid > 120 {
		t.Errorf("bilinear midpoint = %d, want ~100", mid)
	}
}

// Histogram mass property: bins always sum to the pixel count.
func TestHistogramMassProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(40), 1+rng.Intn(40)
		im := randomImage(rng, w, h)
		hist := im.GrayHistogram()
		sum := 0
		for _, c := range hist {
			sum += c
		}
		return sum == w*h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChannelHistograms(t *testing.T) {
	im := New(2, 2)
	im.Fill(3, 5, 7)
	hr, hg, hb := im.ChannelHistograms()
	if hr[3] != 4 || hg[5] != 4 || hb[7] != 4 {
		t.Error("channel histograms wrong")
	}
}

func TestGrayMean(t *testing.T) {
	g := NewGray(2, 2)
	copy(g.Pix, []uint8{0, 100, 100, 200})
	if m := g.Mean(); m != 100 {
		t.Errorf("mean = %v", m)
	}
	if m := NewGray(0, 0).Mean(); m != 0 {
		t.Errorf("empty mean = %v", m)
	}
}

func TestMorphologyDilateErode(t *testing.T) {
	g := NewGray(7, 7)
	g.Set(3, 3, 255)
	k := PaperKernel()
	d := g.Dilate(k)
	// The 3×3 neighbourhood must light up.
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if d.At(3+dx, 3+dy) != 255 {
				t.Fatalf("dilate missed (%d,%d)", 3+dx, 3+dy)
			}
		}
	}
	if d.At(0, 0) != 0 {
		t.Error("dilate leaked to corner")
	}
	// Erosion of the dilation of a single pixel returns the single pixel.
	e := d.Erode(k)
	if e.At(3, 3) != 255 {
		t.Error("erode(dilate(x)) lost centre")
	}
	if e.At(2, 2) != 0 {
		t.Error("erode left halo")
	}
}

// Morphology duality property: erode(¬x) == ¬dilate(x) for binary images.
func TestMorphologyDualityProperty(t *testing.T) {
	k := PaperKernel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGray(16, 16)
		for i := range g.Pix {
			if rng.Intn(2) == 1 {
				g.Pix[i] = 255
			}
		}
		inv := g.Clone()
		for i := range inv.Pix {
			inv.Pix[i] = 255 - inv.Pix[i]
		}
		left := inv.Erode(k)
		right := g.Dilate(k)
		for i := range left.Pix {
			if left.Pix[i] != 255-right.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCloseOpenIdempotentOnSolid(t *testing.T) {
	g := NewGray(12, 12)
	for i := range g.Pix {
		g.Pix[i] = 255
	}
	out := g.CloseOpen(PaperKernel())
	for i := range out.Pix {
		if out.Pix[i] != 255 {
			t.Fatal("close/open changed a solid image")
		}
	}
}

func TestHuangThresholdSeparatesBimodal(t *testing.T) {
	var hist [256]int
	// Two clear modes at 40 and 200.
	for i := 30; i < 50; i++ {
		hist[i] = 100
	}
	for i := 190; i < 210; i++ {
		hist[i] = 100
	}
	th := HuangThreshold(hist)
	// Pixels <= th are background, so any th in [49, 189] cleanly
	// separates the 30–49 mode from the 190–209 mode.
	if th < 49 || th > 189 {
		t.Errorf("threshold %d does not separate modes", th)
	}
}

func TestHuangThresholdEdgeCases(t *testing.T) {
	var empty [256]int
	if th := HuangThreshold(empty); th != 0 {
		t.Errorf("empty histogram threshold = %d", th)
	}
	var single [256]int
	single[77] = 10
	if th := HuangThreshold(single); th != 77 {
		t.Errorf("single-bin threshold = %d", th)
	}
}

func TestOtsuThresholdSeparatesBimodal(t *testing.T) {
	var hist [256]int
	for i := 10; i < 30; i++ {
		hist[i] = 50
	}
	for i := 220; i < 240; i++ {
		hist[i] = 50
	}
	th := OtsuThreshold(hist)
	// Pixels <= th are background: th in [29, 219] separates the modes.
	if th < 29 || th > 219 {
		t.Errorf("otsu threshold %d does not separate modes", th)
	}
}

func TestBinarize(t *testing.T) {
	g := NewGray(2, 1)
	g.Pix[0], g.Pix[1] = 10, 200
	b := g.Binarize(100)
	if b.Pix[0] != 0 || b.Pix[1] != 255 {
		t.Errorf("binarize: %v", b.Pix)
	}
}

func TestToRGBAAndBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	im := randomImage(rng, 6, 5)
	back := FromImage(im.ToRGBA())
	if !im.Equal(back) {
		t.Error("ToRGBA/FromImage not lossless")
	}
}
