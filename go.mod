module cbvr

go 1.22
