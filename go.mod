module cbvr

go 1.21
