GO ?= go
VETBIN := $(CURDIR)/.cache/cbvrvet

.PHONY: all build test race vet vet-standalone clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs the stock vet pass plus the cbvrvet suite (lockorder,
# ctxloop, poolguard, noalloc, errvet) the way CI does: through
# `go vet -vettool`, which caches per-package analysis facts in the Go
# build cache so warm runs re-analyze only changed packages.
vet: $(VETBIN)
	$(GO) vet ./...
	$(GO) vet -vettool=$(VETBIN) ./...

# vet-standalone runs the suite through its own loader (no go vet in
# front) — slower, no fact cache, but a single process that is easier
# to debug or run under a debugger.
vet-standalone:
	$(GO) run ./tools/cbvrvet ./...

$(VETBIN): FORCE
	@mkdir -p $(dir $(VETBIN))
	$(GO) build -o $(VETBIN) ./tools/cbvrvet

.PHONY: FORCE
FORCE:

clean:
	rm -rf $(CURDIR)/.cache
