// Benchmarks for the streaming re-index subsystem and the spooled blob
// ingest path. Run with -benchmem: the alloc stats are the point —
// BenchmarkIngestSpooledBlob's bytes/op must stay far below the container
// size (the compressed container spools into blob pages instead of
// sitting in memory), and BenchmarkReindex shows a full descriptor
// rebuild without re-upload.
package cbvr_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"cbvr"
	"cbvr/internal/cvj"
	"cbvr/internal/synthvid"
)

// benchContainer encodes a deterministic clip once per process.
func benchContainer(b *testing.B, frames int) []byte {
	b.Helper()
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{
		Width: 160, Height: 120, Frames: frames, Shots: 5, Seed: 77,
	})
	raw, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

// BenchmarkIngestSpooledBlob measures one full streamed ingest per
// iteration, deleting the video afterwards so the store stays small. The
// container reader is the only place its bytes exist in user space;
// b.ReportMetric exposes the container size so the allocs/op column can
// be read against it.
func BenchmarkIngestSpooledBlob(b *testing.B) {
	raw := benchContainer(b, 48)
	sys, err := cbvr.Open(filepath.Join(b.TempDir(), "spool.db"), cbvr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ReportAllocs()
	b.ReportMetric(float64(len(raw)), "container-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.IngestVideoStream(fmt.Sprintf("clip_%d", i), bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := sys.DeleteVideo(res.VideoID); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkReindex measures one full ReindexVideo per iteration: stream
// the stored key frames back out, re-extract all seven descriptors and
// swap the rows.
func BenchmarkReindex(b *testing.B) {
	raw := benchContainer(b, 48)
	sys, err := cbvr.Open(filepath.Join(b.TempDir(), "reindex.db"), cbvr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	res, err := sys.IngestVideoStream("clip", bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ReindexVideo(res.VideoID); err != nil {
			b.Fatal(err)
		}
	}
}
