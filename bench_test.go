// Benchmarks regenerating the paper's evaluation artefacts:
//
//	BenchmarkTable1_*          Table 1 — one ranked retrieval per method
//	BenchmarkFig7_*            Fig. 7 — range-index assignment & pruning
//	BenchmarkFig8_*            Fig. 8 — each feature extractor
//	BenchmarkPipeline_*        ingest/key-frame/video-search pipelines
//	BenchmarkAblation_*        the design-choice ablations from DESIGN.md
//
// Run `go test -bench=. -benchmem` at the repository root. The shared
// corpus is built once per process; per-op numbers measure steady-state
// query/extraction cost. cmd/cbvr-bench prints the same artefacts with the
// measured precision tables.
package cbvr_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cbvr"
	"cbvr/internal/core"
	"cbvr/internal/cvj"
	"cbvr/internal/eval"
	"cbvr/internal/features"
	"cbvr/internal/imaging"
	"cbvr/internal/keyframe"
	"cbvr/internal/rangeindex"
	"cbvr/internal/synthvid"
)

// benchCorpus is the shared fixture: a populated engine plus held-out
// queries with pre-extracted descriptor sets.
type benchCorpus struct {
	dir     string
	sys     *cbvr.System
	queries []eval.Query
	qsets   []*features.Set
	frame   *imaging.Image // one raw query frame
}

var (
	corpusOnce sync.Once
	corpus     *benchCorpus
	corpusErr  error
)

func sharedCorpus(b *testing.B) *benchCorpus {
	b.Helper()
	corpusOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cbvr-bench-*")
		if err != nil {
			corpusErr = err
			return
		}
		sys, err := cbvr.Open(filepath.Join(dir, "bench.db"), cbvr.Options{})
		if err != nil {
			corpusErr = err
			return
		}
		cfg := eval.Table1Config{
			VideosPerCategory:  3,
			QueriesPerCategory: 2,
			Video:              synthvid.Config{Frames: 36, Shots: 5},
			Seed:               1,
		}
		if _, err := eval.BuildCorpus(sys.Engine(), cfg); err != nil {
			corpusErr = err
			return
		}
		queries := eval.BuildQueries(cfg)
		frames := make([]*imaging.Image, len(queries))
		for i, q := range queries {
			frames[i] = q.Frame
		}
		corpus = &benchCorpus{
			dir:     dir,
			sys:     sys,
			queries: queries,
			qsets:   sys.Engine().ExtractQuerySets(frames),
			frame:   queries[0].Frame,
		}
	})
	if corpusErr != nil {
		b.Fatal(corpusErr)
	}
	return corpus
}

// benchSearch times one full ranked retrieval per iteration for a method
// configuration (Table 1 inner loop).
func benchSearch(b *testing.B, opt core.SearchOptions) {
	c := sharedCorpus(b)
	opt.K = 100
	opt.NoPruning = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(c.qsets)
		if _, err := c.sys.Engine().SearchWithSet(c.qsets[q], core.QueryBucket(c.queries[q].Frame), opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1: one benchmark per paper column.
func BenchmarkTable1_GLCM(b *testing.B) {
	benchSearch(b, core.SearchOptions{Kinds: []features.Kind{features.KindGLCM}})
}
func BenchmarkTable1_Gabor(b *testing.B) {
	benchSearch(b, core.SearchOptions{Kinds: []features.Kind{features.KindGabor}})
}
func BenchmarkTable1_Tamura(b *testing.B) {
	benchSearch(b, core.SearchOptions{Kinds: []features.Kind{features.KindTamura}})
}
func BenchmarkTable1_Histogram(b *testing.B) {
	benchSearch(b, core.SearchOptions{Kinds: []features.Kind{features.KindHistogram}})
}
func BenchmarkTable1_Autocorrelogram(b *testing.B) {
	benchSearch(b, core.SearchOptions{Kinds: []features.Kind{features.KindCorrelogram}})
}
func BenchmarkTable1_SimpleRegionGrowing(b *testing.B) {
	benchSearch(b, core.SearchOptions{Kinds: []features.Kind{features.KindRegions}})
}
func BenchmarkTable1_Combined(b *testing.B) {
	benchSearch(b, core.SearchOptions{})
}

// BenchmarkTable1_FullEvaluation runs the entire Table 1 harness (all 7
// methods × all queries × 4 cut-offs) per iteration.
func BenchmarkTable1_FullEvaluation(b *testing.B) {
	c := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunTable1(c.sys.Engine(), c.queries); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 7: range-finder assignment and index pruning.
func BenchmarkFig7_RangeAssignFaithful(b *testing.B) {
	c := sharedCorpus(b)
	hist := c.frame.Rescale(features.AnalysisSize, features.AnalysisSize).GrayHistogram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rangeindex.AssignFaithful(&hist)
	}
}

func BenchmarkFig7_RangeAssignGeneralised(b *testing.B) {
	c := sharedCorpus(b)
	hist := c.frame.Rescale(features.AnalysisSize, features.AnalysisSize).GrayHistogram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rangeindex.Assign(&hist, 0, rangeindex.PaperLevels, rangeindex.PaperLevel1Threshold, rangeindex.PaperDeepThreshold)
	}
}

func BenchmarkFig7_CandidateSelection(b *testing.B) {
	c := sharedCorpus(b)
	bucket := core.QueryBucket(c.frame)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.sys.Engine().Store().CandidatesByRange(nil, bucket); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 8: one benchmark per feature extractor on a raw frame.
func benchExtract(b *testing.B, kind features.Kind) {
	c := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.Extract(kind, c.frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_ColorHistogram(b *testing.B)  { benchExtract(b, features.KindHistogram) }
func BenchmarkFig8_GLCM(b *testing.B)            { benchExtract(b, features.KindGLCM) }
func BenchmarkFig8_Gabor(b *testing.B)           { benchExtract(b, features.KindGabor) }
func BenchmarkFig8_Tamura(b *testing.B)          { benchExtract(b, features.KindTamura) }
func BenchmarkFig8_Autocorrelogram(b *testing.B) { benchExtract(b, features.KindCorrelogram) }
func BenchmarkFig8_Naive(b *testing.B)           { benchExtract(b, features.KindNaive) }
func BenchmarkFig8_RegionGrowing(b *testing.B)   { benchExtract(b, features.KindRegions) }

func BenchmarkFig8_ExtractAll(b *testing.B) {
	c := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.ExtractAll(c.frame)
	}
}

// Pipeline benchmarks.
func BenchmarkPipeline_IngestVideo(b *testing.B) {
	dir := b.TempDir()
	sys, err := cbvr.Open(filepath.Join(dir, "ingest.db"), cbvr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Frames: 24, Shots: 4, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.IngestFrames(fmt.Sprintf("clip_%d", i), v.Frames, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline_IngestSharedPlanes ingests a camera-resolution clip
// so per-key-frame feature extraction — the part the shared analysis-plane
// pass accelerates — dominates the measurement. Compare against
// BenchmarkExtractAllReference × key frames (internal/features) for the
// before/after trajectory.
func BenchmarkPipeline_IngestSharedPlanes(b *testing.B) {
	dir := b.TempDir()
	sys, err := cbvr.Open(filepath.Join(dir, "ingest-shared.db"), cbvr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{
		Width: 320, Height: 240, Frames: 24, Shots: 4, Seed: 5,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.IngestFrames(fmt.Sprintf("shared_clip_%d", i), v.Frames, 12)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.KeyFrameIDs)), "keyframes")
		}
	}
}

// BenchmarkPipeline_IngestStreamed measures the streamed ingest path
// (decode/select/extract overlap, pooled planes, JPEG-record reuse) on a
// camera-resolution container. Run with -benchmem and compare against
// BenchmarkPipeline_IngestBufferedReference: the streamed path holds only
// key frames, reuses the selection-time signature and rasters, and never
// re-encodes JPEGs, so both bytes/op and time/op drop.
func BenchmarkPipeline_IngestStreamed(b *testing.B) {
	dir := b.TempDir()
	sys, err := cbvr.Open(filepath.Join(dir, "ingest-streamed.db"), cbvr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{
		Width: 320, Height: 240, Frames: 24, Shots: 4, Seed: 5,
	})
	container, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.IngestVideoStream(fmt.Sprintf("streamed_%d", i), bytes.NewReader(container))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.KeyFrameIDs)), "keyframes")
		}
	}
}

// BenchmarkPipeline_IngestBufferedReference is the allocation and speed
// baseline: the retained in-memory reference ingest (decode everything,
// batch selection, sequential unpooled extraction) over the identical
// container.
func BenchmarkPipeline_IngestBufferedReference(b *testing.B) {
	dir := b.TempDir()
	sys, err := cbvr.Open(filepath.Join(dir, "ingest-buffered.db"), cbvr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{
		Width: 320, Height: 240, Frames: 24, Shots: 4, Seed: 5,
	})
	container, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Engine().IngestVideoReference(fmt.Sprintf("buffered_%d", i), container); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipeline_KeyframeExtraction(b *testing.B) {
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{Frames: 48, Shots: 5, Seed: 6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (keyframe.Extractor{}).Extract(v.Frames); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipeline_SearchFrameEndToEnd(b *testing.B) {
	c := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.sys.Search(c.frame, cbvr.SearchOptions{K: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipeline_SearchVideoDTW(b *testing.B) {
	c := sharedCorpus(b)
	v := synthvid.Generate(synthvid.Movie, synthvid.Config{Frames: 16, Shots: 2, Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.sys.SearchVideo(v.Frames, cbvr.SearchOptions{K: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// Sharded search pipeline (DESIGN.md "Sharded search pipeline").
//
// shardedCorpus is a dedicated large fixture: every frame becomes a key
// frame (threshold ~0), yielding a ≥ 1000-key-frame cache so the
// parallel shard scan has enough work per query for the speedup to be
// measurable. It is built once, only when these benchmarks run.
type shardedBenchCorpus struct {
	sys    *cbvr.System
	qsets  []*features.Set
	qbkts  []rangeindex.Range
	frames int
}

var (
	shardedOnce sync.Once
	sharded     *shardedBenchCorpus
	shardedErr  error
)

func shardedCorpus(b *testing.B) *shardedBenchCorpus {
	b.Helper()
	shardedOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cbvr-sharded-*")
		if err != nil {
			shardedErr = err
			return
		}
		sys, err := cbvr.Open(filepath.Join(dir, "sharded.db"), cbvr.Options{
			// Near-zero threshold keeps every frame: 25 clips x 40 frames
			// = 1000 key frames. The explicit shard count keeps the
			// 1/4-worker variants meaningful even on hosts with a small
			// GOMAXPROCS (shards bound per-query parallelism).
			KeyframeThreshold: 0.001,
			SearchShards:      8,
		})
		if err != nil {
			shardedErr = err
			return
		}
		cats := []synthvid.Category{
			synthvid.Elearning, synthvid.Sports, synthvid.Cartoon,
			synthvid.Movie, synthvid.News,
		}
		for i := 0; i < 25; i++ {
			v := synthvid.Generate(cats[i%len(cats)], synthvid.Config{
				Width: 96, Height: 72, Frames: 40, Shots: 6, Seed: int64(1000 + i),
			})
			if _, err := sys.IngestFrames(fmt.Sprintf("%s_%02d", v.Name, i), v.Frames, v.FPS); err != nil {
				shardedErr = err
				return
			}
		}
		n, err := sys.Engine().CacheSize()
		if err != nil {
			shardedErr = err
			return
		}
		c := &shardedBenchCorpus{sys: sys, frames: n}
		var qframes []*imaging.Image
		for i := 0; i < 4; i++ {
			q := synthvid.Generate(cats[i], synthvid.Config{
				Width: 96, Height: 72, Frames: 2, Shots: 1, Seed: int64(2000 + i),
			})
			qframes = append(qframes, q.Frames[0])
		}
		c.qsets = sys.Engine().ExtractQuerySets(qframes)
		for _, f := range qframes {
			c.qbkts = append(c.qbkts, core.QueryBucket(f))
		}
		sharded = c
	})
	if shardedErr != nil {
		b.Fatal(shardedErr)
	}
	if sharded.frames < 1000 {
		b.Fatalf("sharded corpus has %d key frames, want >= 1000", sharded.frames)
	}
	return sharded
}

// benchSearchSharded times one combined-feature top-K retrieval per
// iteration through the sharded pipeline at a given worker count
// (0 = engine default, i.e. GOMAXPROCS).
func benchSearchSharded(b *testing.B, workers int) {
	c := shardedCorpus(b)
	opt := core.SearchOptions{K: 10, NoPruning: true, Workers: workers}
	b.ReportMetric(float64(c.frames), "keyframes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(c.qsets)
		if _, err := c.sys.Engine().SearchWithSet(c.qsets[q], c.qbkts[q], opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchSharded_Reference is the speedup baseline: the retained
// naive single-goroutine full-sort scan over the same 1k-key-frame cache.
func BenchmarkSearchSharded_Reference(b *testing.B) {
	c := shardedCorpus(b)
	opt := core.SearchOptions{K: 10, NoPruning: true}
	b.ReportMetric(float64(c.frames), "keyframes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(c.qsets)
		if _, err := c.sys.Engine().SearchWithSetReference(c.qsets[q], c.qbkts[q], opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchSharded_Workers1(b *testing.B)   { benchSearchSharded(b, 1) }
func BenchmarkSearchSharded_Workers4(b *testing.B)   { benchSearchSharded(b, 4) }
func BenchmarkSearchSharded_WorkersMax(b *testing.B) { benchSearchSharded(b, 0) }

// BenchmarkScanArena isolates the scan phase of the columnar pipeline:
// the batched kernel sweep of all seven descriptor columns over every
// live arena row of the 1k-key-frame corpus, into a preallocated buffer.
// Run with -benchmem: the sweep itself performs zero allocations — the
// per-query work is exactly len(kinds) kernel calls per shard over
// contiguous memory.
func BenchmarkScanArena(b *testing.B) {
	c := shardedCorpus(b)
	eng := c.sys.Engine()
	pq := eng.PackQuery(c.qsets[0], nil)
	n, err := eng.CacheSize()
	if err != nil {
		b.Fatal(err)
	}
	dist := make([]float64, int(features.NumKinds)*n)
	b.ReportMetric(float64(n), "keyframes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ScanArenaInto(pq, dist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanArena_DispatchReference is the pre-arena scan shape over
// the same candidates: per-entry interface-dispatched DistanceTo calls
// chasing heap descriptor vectors. The gap between this and
// BenchmarkScanArena is the memory-layout win in isolation.
func BenchmarkScanArena_DispatchReference(b *testing.B) {
	c := shardedCorpus(b)
	eng := c.sys.Engine()
	n, err := eng.CacheSize()
	if err != nil {
		b.Fatal(err)
	}
	dist := make([]float64, int(features.NumKinds)*n)
	b.ReportMetric(float64(n), "keyframes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ScanDispatchReference(c.qsets[0], nil, dist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchSharded_MinMaxWorkersMax exercises the streamed min-max
// fusion path (two-pass, no per-feature distance lists) at full
// parallelism.
func BenchmarkSearchSharded_MinMaxWorkersMax(b *testing.B) {
	c := shardedCorpus(b)
	opt := core.SearchOptions{K: 10, NoPruning: true, Fusion: core.FusionMinMax}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(c.qsets)
		if _, err := c.sys.Engine().SearchWithSet(c.qsets[q], c.qbkts[q], opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablations (DESIGN.md).
func BenchmarkAblation_RangePruningOn(b *testing.B) {
	c := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(c.qsets)
		if _, err := c.sys.Engine().SearchWithSet(c.qsets[q], core.QueryBucket(c.queries[q].Frame),
			core.SearchOptions{K: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_RangePruningOff(b *testing.B) {
	c := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(c.qsets)
		if _, err := c.sys.Engine().SearchWithSet(c.qsets[q], core.QueryBucket(c.queries[q].Frame),
			core.SearchOptions{K: 20, NoPruning: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_FusionRRF(b *testing.B) {
	benchSearch(b, core.SearchOptions{Fusion: core.FusionRRF})
}

func BenchmarkAblation_FusionMinMax(b *testing.B) {
	benchSearch(b, core.SearchOptions{Fusion: core.FusionMinMax})
}

func BenchmarkAblation_KeyframeThreshold(b *testing.B) {
	v := synthvid.Generate(synthvid.Nature, synthvid.Config{Frames: 48, Shots: 5, Seed: 7})
	for _, thr := range []float64{400, 800, 1600} {
		b.Run(fmt.Sprintf("thr=%.0f", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (keyframe.Extractor{Threshold: thr}).Extract(v.Frames); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_DPAlignment(b *testing.B) {
	c := sharedCorpus(b)
	v := synthvid.Generate(synthvid.News, synthvid.Config{Frames: 12, Shots: 2, Seed: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.sys.Engine().SearchVideo(v.Frames, core.SearchOptions{K: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_BestSingleFrame(b *testing.B) {
	c := sharedCorpus(b)
	qsets := c.qsets[:4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.sys.Engine().BestSingleFrameVideoSearch(qsets, core.SearchOptions{K: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_GaborFaithful(b *testing.B) {
	c := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.ExtractGabor(c.frame)
	}
}

func BenchmarkAblation_GaborCorrected(b *testing.B) {
	c := sharedCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.ExtractGaborCorrected(c.frame)
	}
}

func BenchmarkAblation_HuangVsOtsuThreshold(b *testing.B) {
	c := sharedCorpus(b)
	hist := c.frame.ToGray().Histogram()
	b.Run("huang", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imaging.HuangThreshold(hist)
		}
	})
	b.Run("otsu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imaging.OtsuThreshold(hist)
		}
	})
}
