package cbvr_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"cbvr"
)

func openSystem(t *testing.T) *cbvr.System {
	t.Helper()
	sys, err := cbvr.Open(filepath.Join(t.TempDir(), "api.db"), cbvr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func TestPublicAPIIngestAndSearch(t *testing.T) {
	sys := openSystem(t)
	name, frames, fps := cbvr.GenerateVideo(cbvr.CategorySports, cbvr.VideoConfig{
		Width: 96, Height: 72, Frames: 12, Shots: 2, Seed: 5,
	})
	if name == "" || fps <= 0 || len(frames) != 12 {
		t.Fatalf("generator: name=%q fps=%d frames=%d", name, fps, len(frames))
	}
	res, err := sys.IngestFrames(name, frames, fps)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := sys.Search(frames[0], cbvr.SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].VideoID != res.VideoID {
		t.Errorf("self search failed: %+v", matches)
	}
}

func TestPublicAPIVideoRoundTrip(t *testing.T) {
	_, frames, fps := cbvr.GenerateVideo(cbvr.CategoryCartoon, cbvr.VideoConfig{
		Width: 64, Height: 48, Frames: 4, Shots: 1, Seed: 6,
	})
	var buf bytes.Buffer
	if err := cbvr.EncodeVideo(&buf, frames, fps, 0); err != nil {
		t.Fatal(err)
	}
	gotFPS, gotFrames, err := cbvr.DecodeVideo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotFPS != fps || len(gotFrames) != len(frames) {
		t.Errorf("round trip: fps=%d frames=%d", gotFPS, len(gotFrames))
	}
}

func TestPublicAPIIngestContainer(t *testing.T) {
	sys := openSystem(t)
	_, frames, fps := cbvr.GenerateVideo(cbvr.CategoryNews, cbvr.VideoConfig{
		Width: 96, Height: 72, Frames: 8, Shots: 2, Seed: 7,
	})
	var buf bytes.Buffer
	if err := cbvr.EncodeVideo(&buf, frames, fps, 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.IngestVideo("news-clip", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrames != 8 {
		t.Errorf("frames = %d", res.NumFrames)
	}
	if err := sys.DeleteVideo(res.VideoID); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDescribeFrame(t *testing.T) {
	_, frames, _ := cbvr.GenerateVideo(cbvr.CategoryMovie, cbvr.VideoConfig{
		Width: 96, Height: 72, Frames: 2, Shots: 1, Seed: 8,
	})
	strs, min, max := cbvr.DescribeFrame(frames[0])
	if len(strs) != cbvr.NumFeatures {
		t.Fatalf("described %d features", len(strs))
	}
	if min < 0 || max > 255 || min > max {
		t.Errorf("range [%d,%d]", min, max)
	}
	if !strings.HasPrefix(strs[cbvr.FeatureHistogram], "RGB 256 ") {
		t.Error("histogram format wrong")
	}
	if !strings.HasPrefix(strs[cbvr.FeatureGabor], "gabor 60 ") {
		t.Error("gabor format wrong")
	}
	if !strings.HasPrefix(strs[cbvr.FeatureNaive], "NaiveVector java.awt.Color[") {
		t.Error("naive format wrong")
	}
}

func TestPublicAPISearchVideo(t *testing.T) {
	sys := openSystem(t)
	cfg := cbvr.VideoConfig{Width: 96, Height: 72, Frames: 10, Shots: 2}
	for _, cat := range []cbvr.Category{cbvr.CategorySports, cbvr.CategoryNature} {
		cfg.Seed = int64(cat) + 20
		name, frames, fps := cbvr.GenerateVideo(cat, cfg)
		if _, err := sys.IngestFrames(name, frames, fps); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Seed = int64(cbvr.CategorySports) + 20
	_, q, _ := cbvr.GenerateVideo(cbvr.CategorySports, cfg)
	matches, err := sys.SearchVideo(q, cbvr.SearchOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 || !strings.HasPrefix(matches[0].VideoName, "sports") {
		t.Errorf("video search: %+v", matches)
	}
}

func TestPublicAPICorpusCoverage(t *testing.T) {
	corpus := cbvr.GenerateCorpus(1, cbvr.VideoConfig{Width: 64, Height: 48, Frames: 4, Shots: 1, Seed: 9})
	if len(corpus) != 6 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	for name, frames := range corpus {
		if len(frames) != 4 {
			t.Errorf("%s has %d frames", name, len(frames))
		}
	}
}

func TestPublicAPIFromJPEG(t *testing.T) {
	im := cbvr.NewImage(20, 10)
	var buf bytes.Buffer
	if err := im.EncodeJPEG(&buf, cbvr.DefaultJPEGQuality); err != nil {
		t.Fatal(err)
	}
	got, err := cbvr.FromJPEG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 20 || got.H != 10 {
		t.Errorf("dims %dx%d", got.W, got.H)
	}
}

// TestPublicAPIIngestVideoStream exercises the reader-based ingest entry
// point end to end: encode a clip, stream it in, search it back, and check
// it matches the buffered entry point's result shape.
func TestPublicAPIIngestVideoStream(t *testing.T) {
	sys := openSystem(t)
	_, frames, fps := cbvr.GenerateVideo(cbvr.CategoryNews, cbvr.VideoConfig{
		Width: 96, Height: 72, Frames: 10, Shots: 2, Seed: 7,
	})
	var buf bytes.Buffer
	if err := cbvr.EncodeVideo(&buf, frames, fps, 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.IngestVideoStream("streamed", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrames != len(frames) || len(res.KeyFrameIDs) == 0 {
		t.Fatalf("result: %+v", res)
	}
	matches, err := sys.Search(frames[0], cbvr.SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].VideoID != res.VideoID {
		t.Errorf("self search after streamed ingest: %+v", matches)
	}
}
