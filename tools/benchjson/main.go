// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so CI can record the search-perf
// trajectory (BENCH_search.json) across PRs without scraping logs.
//
// Usage:
//
//	go test -run '^$' -bench 'SearchSharded|ScanArena' -benchmem . | go run ./tools/benchjson
//
// Every benchmark result line becomes one object: the name (GOMAXPROCS
// suffix stripped into its own field), the iteration count, and every
// "value unit" metric pair — ns/op, B/op, allocs/op and any
// b.ReportMetric extras (e.g. keyframes) — keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Procs   int                `json:"procs,omitempty"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	Package    string   `json:"package,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-P  N  v unit  v unit …" line; ok
// is false for non-benchmark lines (headers, PASS, ok).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

// parse consumes full `go test -bench` output.
func parse(in io.Reader) (Doc, error) {
	var doc Doc
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			doc.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc, sc.Err()
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
