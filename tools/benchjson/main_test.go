package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cbvr
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSearchSharded_Workers1-8         	     770	   1389566 ns/op	  145226 B/op	      52 allocs/op
BenchmarkScanArena-8                      	    2078	    584513 ns/op	      1000 keyframes	       0 B/op	       0 allocs/op
BenchmarkNoProcsSuffix 	     100	     99.5 ns/op
PASS
ok  	cbvr	37.269s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Package != "cbvr" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "SearchSharded_Workers1" || b0.Procs != 8 || b0.Iters != 770 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 1389566 || b0.Metrics["allocs/op"] != 52 {
		t.Fatalf("b0 metrics = %v", b0.Metrics)
	}
	b1 := doc.Benchmarks[1]
	if b1.Metrics["keyframes"] != 1000 || b1.Metrics["allocs/op"] != 0 {
		t.Fatalf("b1 metrics = %v", b1.Metrics)
	}
	b2 := doc.Benchmarks[2]
	if b2.Name != "NoProcsSuffix" || b2.Procs != 0 || b2.Metrics["ns/op"] != 99.5 {
		t.Fatalf("b2 = %+v", b2)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	doc, err := parse(strings.NewReader("hello\nBenchmarkX not numbers here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage", len(doc.Benchmarks))
	}
}
