package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles the cbvrvet binary once into t.TempDir.
func buildVet(t *testing.T, repoRoot string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cbvrvet")
	cmd := exec.Command("go", "build", "-o", bin, "./tools/cbvrvet")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building cbvrvet: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not at %s: %v", root, err)
	}
	return root
}

// TestVettoolSmoke runs the built binary the way CI does — through
// `go vet -vettool` over the whole module — and requires a clean pass:
// the tree's own directives must resolve and every analyzer must come
// back without findings.
func TestVettoolSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module twice; skipped in -short")
	}
	root := repoRoot(t)
	bin := buildVet(t, root)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -vettool=cbvrvet ./... failed: %v\n%s", err, out.String())
	}
}

// TestListCountsAnalyzers pins the -list output CI greps: five
// analyzers, one per line, in registry order.
func TestListCountsAnalyzers(t *testing.T) {
	root := repoRoot(t)
	bin := buildVet(t, root)

	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatalf("cbvrvet -list: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 5 {
		t.Fatalf("-list printed %d lines, want 5:\n%s", len(lines), out)
	}
	for i, name := range []string{"lockorder", "ctxloop", "poolguard", "noalloc", "errvet"} {
		if !strings.HasPrefix(lines[i], name) {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], name)
		}
	}
}

// TestVettoolProtocol exercises the unitchecker handshake go vet
// performs before dispatching units: -V=full must print a version line
// naming the tool.
func TestVettoolProtocol(t *testing.T) {
	root := repoRoot(t)
	bin := buildVet(t, root)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("cbvrvet -V=full: %v", err)
	}
	if !strings.Contains(string(out), "cbvrvet") || !strings.Contains(string(out), "buildID=") {
		t.Errorf("-V=full output %q lacks tool name or buildID", out)
	}
}
