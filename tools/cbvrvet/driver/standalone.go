package driver

import (
	"fmt"
	"io"

	"cbvr/tools/cbvrvet/analysis"
)

// Run loads the packages matching patterns, runs the analyzers over
// each, prints findings to out, and returns the number of findings.
// Directive or load errors abort the run.
func Run(out io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		findings, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			return total, err
		}
		for _, f := range findings {
			fmt.Fprintln(out, f.String())
		}
		total += len(findings)
	}
	return total, nil
}
