// Package driver loads and type-checks packages for the cbvrvet
// analyzers, two ways: standalone (shelling out to `go list -export`,
// used by the cbvrvet CLI, cbvrctl vet and the fixture runner) and as a
// `go vet -vettool` unit checker (unit.go). Both paths use only the
// standard library: dependencies are type-checked from the compiler
// export data the go command already produces, never from source.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"cbvr/tools/cbvrvet/analysis"
)

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over the patterns and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter type-checks imports from compiler export data files.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newInfo allocates every types.Info map the analyzers may consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}

// typeCheckFiles parses and type-checks one package's files with the
// given importer resolving its dependencies.
func typeCheckFiles(fset *token.FileSet, path string, dir string, goFiles []string, imp types.Importer) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	tc := &types.Config{Importer: imp}
	tpkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &analysis.Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// StdExports builds the import-path -> export-data-file map for the
// whole standard library (the only imports fixture packages may use).
// The go command reuses its build cache, so repeat calls are cheap.
func StdExports() (map[string]string, error) {
	listed, err := goList("", []string{"std"})
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Load lists, parses and type-checks the packages matching the
// patterns (relative to dir; "" means the current directory),
// excluding test files, with dependencies resolved from export data.
func Load(dir string, patterns []string) ([]*analysis.Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	var out []*analysis.Package
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		fset := token.NewFileSet()
		pkg, err := typeCheckFiles(fset, p.ImportPath, p.Dir, p.GoFiles, ExportImporter(fset, exports))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
