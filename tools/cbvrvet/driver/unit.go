package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"cbvr/tools/cbvrvet/analysis"
)

// unitConfig mirrors the JSON config the go command hands a -vettool
// for each compilation unit (see cmd/vet and x/tools' unitchecker).
// Only the fields cbvrvet consumes are listed.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// MaybeUnitVet detects the go-vet driver protocol and, when invoked
// that way, services it and exits. It returns normally only when the
// process was not started as a vettool, leaving the standalone CLI to
// handle the arguments.
//
// Protocol (go vet -vettool=cbvrvet):
//
//	cbvrvet -V=full          print a version line with a buildID and exit
//	cbvrvet -flags           print the JSON list of tool flags and exit
//	cbvrvet <unit>.cfg       analyze one compilation unit
func MaybeUnitVet(analyzers []*analysis.Analyzer) {
	args := os.Args[1:]
	if len(args) != 1 {
		return
	}
	switch {
	case strings.HasPrefix(args[0], "-V="):
		printVersion()
		os.Exit(0)
	case args[0] == "-flags":
		// cbvrvet exposes no per-unit flags to the go command.
		fmt.Println("[]")
		os.Exit(0)
	case strings.HasSuffix(args[0], ".cfg"):
		code, err := vetUnit(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cbvrvet: %v\n", err)
			os.Exit(1)
		}
		os.Exit(code)
	}
}

// printVersion emits the `-V=full` line the go command uses as a cache
// key; hashing our own executable makes rebuilt tools invalidate stale
// vet results.
func printVersion() {
	name := os.Args[0]
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Printf("%s version devel cbvrvet buildID=%s\n", name, id)
}

// vetUnit analyzes one compilation unit described by a go-vet config
// file. Findings go to stderr; the exit code is 1 when any survive.
func vetUnit(cfgFile string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// The go command always expects a facts file, even though cbvrvet
	// keeps no cross-package facts; write an empty one up front so
	// VetxOnly dependency visits succeed cheaply.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("cbvrvet-no-facts\n"), 0o666); err != nil {
			return 0, fmt.Errorf("writing facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	pkg, err := typeCheckUnit(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	findings, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	if len(findings) > 0 {
		return 1, nil
	}
	return 0, nil
}

// typeCheckUnit type-checks a unit the way the go command expects:
// import paths go through cfg.ImportMap (vendoring), and export data
// comes from cfg.PackageFile.
func typeCheckUnit(fset *token.FileSet, cfg *unitConfig) (*analysis.Package, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gc := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return gc.Import(path)
	})
	return typeCheckFiles(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp)
}
