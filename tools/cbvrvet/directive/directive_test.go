package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc runs ParseFiles over one in-memory file named fix.go.
func parseSrc(t *testing.T, src string) (*Set, *token.FileSet, *ast.File, error) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	s, perr := ParseFiles(fset, []*ast.File{f})
	return s, fset, f, perr
}

func TestParseValidDirectives(t *testing.T) {
	src := `package p

//cbvrvet:lockorder a < b < c
//cbvrvet:lockorder noio b
type T struct{}

//cbvrvet:noalloc
func kernel() {}

func other() {
	//cbvrvet:ignore ctxloop reason goes here
	_ = 1
	// errvet:ignore legacy reason
	_ = 2
}
`
	s, _, f, err := parseSrc(t, src)
	if err != nil {
		t.Fatal(err)
	}
	// A three-lock chain emits the two adjacent pairs.
	if len(s.Orders) != 2 {
		t.Fatalf("got %d orders, want 2: %+v", len(s.Orders), s.Orders)
	}
	if s.Orders[0].Earlier != "a" || s.Orders[0].Later != "b" ||
		s.Orders[1].Earlier != "b" || s.Orders[1].Later != "c" {
		t.Errorf("wrong order pairs: %+v", s.Orders)
	}
	if len(s.NoIO) != 1 || s.NoIO[0].Lock != "b" {
		t.Errorf("wrong noio set: %+v", s.NoIO)
	}
	var kernel *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "kernel" {
			kernel = fd
		}
	}
	if kernel == nil || !s.NoAlloc(kernel) {
		t.Errorf("kernel should carry the noalloc annotation")
	}
	// The ignore covers its own line (11) and the next (12).
	for _, line := range []int{11, 12} {
		if !s.Ignored(token.Position{Filename: "fix.go", Line: line}, "ctxloop") {
			t.Errorf("line %d should be ignored for ctxloop", line)
		}
	}
	if s.Ignored(token.Position{Filename: "fix.go", Line: 13}, "ctxloop") {
		t.Errorf("line 13 should not be ignored for ctxloop")
	}
	// The ignore is per analyzer.
	if s.Ignored(token.Position{Filename: "fix.go", Line: 11}, "noalloc") {
		t.Errorf("ignore for ctxloop must not cover noalloc")
	}
	// Legacy errvet:ignore covers its line and the next for errvet only.
	if !s.Ignored(token.Position{Filename: "fix.go", Line: 14}, "errvet") {
		t.Errorf("legacy errvet:ignore line should be ignored for errvet")
	}
}

func TestMalformedDirectives(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error, which must also carry fix.go:<line>
		line string
	}{
		{
			name: "spaced directive",
			src:  "package p\n\n// cbvrvet:ignore ctxloop oops\nfunc f() {}\n",
			want: "must start the comment as //cbvrvet:<verb> with no space",
			line: "fix.go:3",
		},
		{
			name: "unknown verb",
			src:  "package p\n\n//cbvrvet:frobnicate x\nfunc f() {}\n",
			want: `unknown cbvrvet directive verb "frobnicate"`,
			line: "fix.go:3",
		},
		{
			name: "ignore without justification",
			src:  "package p\n\nfunc f() {\n\t//cbvrvet:ignore ctxloop\n}\n",
			want: "need an analyzer name and a justification",
			line: "fix.go:4",
		},
		{
			name: "lockorder empty",
			src:  "package p\n\n//cbvrvet:lockorder\ntype T struct{}\n",
			want: "malformed cbvrvet:lockorder directive: empty",
			line: "fix.go:3",
		},
		{
			name: "lockorder trailing operator",
			src:  "package p\n\n//cbvrvet:lockorder a < b <\ntype T struct{}\n",
			want: `want "lockA < lockB`,
			line: "fix.go:3",
		},
		{
			name: "lockorder missing operator",
			src:  "package p\n\n//cbvrvet:lockorder a b c\ntype T struct{}\n",
			want: `want "<" between lock names`,
			line: "fix.go:3",
		},
		{
			name: "noio with two locks",
			src:  "package p\n\n//cbvrvet:lockorder noio a b\ntype T struct{}\n",
			want: "want exactly one lock name",
			line: "fix.go:3",
		},
		{
			name: "noalloc with arguments",
			src:  "package p\n\n//cbvrvet:noalloc yes\nfunc f() {}\n",
			want: "takes no arguments",
			line: "fix.go:3",
		},
		{
			name: "stray noalloc",
			src:  "package p\n\nfunc f() {\n\t//cbvrvet:noalloc\n}\n",
			want: "must be part of a function's doc comment",
			line: "fix.go:4",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := parseSrc(t, tc.src)
			if err == nil {
				t.Fatalf("want error containing %q, got none", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), tc.line) {
				t.Errorf("error %q does not carry position %s", err, tc.line)
			}
		})
	}
}

// TestProseMentionsAreNotDirectives pins the parser's tolerance: the
// marker mid-comment (docs talking about directives) is not a
// directive and not an error.
func TestProseMentionsAreNotDirectives(t *testing.T) {
	src := "package p\n\n// The //cbvrvet:lockorder form documents lock order.\nfunc f() {}\n"
	s, _, _, err := parseSrc(t, src)
	if err != nil {
		t.Fatalf("prose mention rejected: %v", err)
	}
	if len(s.Orders) != 0 {
		t.Errorf("prose mention parsed as a directive: %+v", s.Orders)
	}
}
