// Package directive parses the machine-readable //cbvrvet: comment
// directives the analyzers consume:
//
//	//cbvrvet:lockorder db.mu < stageMu     lock acquisition order
//	//cbvrvet:lockorder noio stageMu        no blocking I/O under a lock
//	//cbvrvet:noalloc                       function must not allocate
//	//cbvrvet:ignore <analyzer> <reason>    suppress one finding
//
// plus the legacy errvet:ignore form kept from tools/errvet. Malformed
// directives are hard errors carrying the file position, so a typo in a
// directive fails the lint run instead of silently disabling a check.
package directive

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Order documents that Earlier must be acquired before Later.
type Order struct {
	Earlier, Later string
	Pos            token.Position
}

// NoIO documents that no blocking or file-I/O call may run while Lock
// is held.
type NoIO struct {
	Lock string
	Pos  token.Position
}

// Set is the parsed directive state of one package.
type Set struct {
	Orders []Order
	NoIO   []NoIO

	noalloc map[*ast.FuncDecl]bool
	// ignores: file name -> line -> analyzer names suppressed on that
	// line. An ignore covers its own line and the next, so the
	// directive works both trailing a statement and on the line above.
	ignores map[string]map[int]map[string]bool
}

const marker = "cbvrvet:"

// ParseFiles extracts every directive from the files. It returns an
// error naming the position of the first malformed directive.
func ParseFiles(fset *token.FileSet, files []*ast.File) (*Set, error) {
	s := &Set{
		noalloc: make(map[*ast.FuncDecl]bool),
		ignores: make(map[string]map[int]map[string]bool),
	}
	// noalloc directives must be attached to a function declaration's
	// doc comment; collect doc-attached ones first so strays can error.
	attached := make(map[*ast.Comment]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if directiveText(c.Text) == "noalloc" {
					s.noalloc[fd] = true
					attached[c] = true
				}
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if err := s.parseComment(fset, c, attached); err != nil {
					return nil, err
				}
			}
		}
	}
	return s, nil
}

// directiveText returns the text after the cbvrvet: marker, or "" when
// the comment is not a directive. Only //-comments in the canonical
// //cbvrvet:... form (no space, like //go:build) count.
func directiveText(text string) string {
	rest, ok := strings.CutPrefix(text, "//"+marker)
	if !ok {
		return ""
	}
	return strings.TrimSpace(rest)
}

func (s *Set) parseComment(fset *token.FileSet, c *ast.Comment, attached map[*ast.Comment]bool) error {
	pos := fset.Position(c.Pos())
	if i := strings.Index(c.Text, "errvet:ignore"); i >= 0 {
		// Legacy errvet directive: reason optional, analyzer fixed.
		s.addIgnore(pos, "errvet")
		return nil
	}
	text := directiveText(c.Text)
	if text == "" {
		// A spaced "// cbvrvet:..." is a typo for a directive, not prose;
		// reject it so it cannot silently disable a check. Mid-comment
		// mentions of the marker (docs) are fine.
		if rest, ok := strings.CutPrefix(c.Text, "//"); ok {
			if trimmed := strings.TrimLeft(rest, " \t"); strings.HasPrefix(trimmed, marker) && trimmed != rest {
				return fmt.Errorf("%s: malformed cbvrvet directive %q: must start the comment as //cbvrvet:<verb> with no space", pos, c.Text)
			}
		}
		return nil
	}
	fields := strings.Fields(text)
	verb := fields[0]
	args := fields[1:]
	switch verb {
	case "lockorder":
		return s.parseLockOrder(pos, args)
	case "noalloc":
		if len(args) > 0 {
			return fmt.Errorf("%s: malformed cbvrvet:noalloc directive: takes no arguments, got %q", pos, strings.Join(args, " "))
		}
		if !attached[c] {
			return fmt.Errorf("%s: cbvrvet:noalloc directive must be part of a function's doc comment", pos)
		}
		return nil
	case "ignore":
		if len(args) < 2 {
			return fmt.Errorf("%s: malformed cbvrvet:ignore directive: need an analyzer name and a justification, got %q", pos, text)
		}
		s.addIgnore(pos, args[0])
		return nil
	default:
		return fmt.Errorf("%s: unknown cbvrvet directive verb %q (want lockorder, noalloc or ignore)", pos, verb)
	}
}

// parseLockOrder parses "noio <lock>" or "<lock> < <lock> [< <lock>...]".
func (s *Set) parseLockOrder(pos token.Position, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("%s: malformed cbvrvet:lockorder directive: empty", pos)
	}
	if args[0] == "noio" {
		if len(args) != 2 {
			return fmt.Errorf("%s: malformed cbvrvet:lockorder noio directive: want exactly one lock name, got %q", pos, strings.Join(args[1:], " "))
		}
		s.NoIO = append(s.NoIO, NoIO{Lock: args[1], Pos: pos})
		return nil
	}
	// Alternating lock, "<", lock, "<", lock ...
	if len(args) < 3 || len(args)%2 == 0 {
		return fmt.Errorf("%s: malformed cbvrvet:lockorder directive: want \"lockA < lockB [< lockC ...]\", got %q", pos, strings.Join(args, " "))
	}
	for i := 0; i < len(args); i++ {
		if i%2 == 1 {
			if args[i] != "<" {
				return fmt.Errorf("%s: malformed cbvrvet:lockorder directive: want \"<\" between lock names, got %q", pos, args[i])
			}
			continue
		}
		if args[i] == "<" || strings.ContainsAny(args[i], "<>") {
			return fmt.Errorf("%s: malformed cbvrvet:lockorder directive: bad lock name %q", pos, args[i])
		}
	}
	for i := 0; i+2 < len(args); i += 2 {
		s.Orders = append(s.Orders, Order{Earlier: args[i], Later: args[i+2], Pos: pos})
	}
	return nil
}

func (s *Set) addIgnore(pos token.Position, analyzer string) {
	byLine := s.ignores[pos.Filename]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s.ignores[pos.Filename] = byLine
	}
	for _, line := range [2]int{pos.Line, pos.Line + 1} {
		set := byLine[line]
		if set == nil {
			set = make(map[string]bool)
			byLine[line] = set
		}
		set[analyzer] = true
	}
}

// NoAlloc reports whether fd carries a cbvrvet:noalloc annotation.
func (s *Set) NoAlloc(fd *ast.FuncDecl) bool { return s.noalloc[fd] }

// Ignored reports whether a diagnostic from analyzer at pos is
// suppressed by an ignore directive on the same line or the line above.
func (s *Set) Ignored(pos token.Position, analyzer string) bool {
	return s.ignores[pos.Filename][pos.Line][analyzer]
}
