// Command cbvrvet is the engine's static-analysis suite: five
// analyzers (lockorder, ctxloop, poolguard, noalloc, errvet) that pin
// the concurrency, pooling, context-cancellation and durability
// invariants DESIGN.md documents ("Static analysis & enforced
// invariants").
//
// Standalone:
//
//	go run ./tools/cbvrvet ./...            # analyze packages
//	go run ./tools/cbvrvet -list            # print the analyzers
//
// As a go vet tool (the form CI uses, with go's per-package caching):
//
//	go build -o cbvrvet ./tools/cbvrvet
//	go vet -vettool=$PWD/cbvrvet ./...
//
// Exits 1 when findings exist, 2 on usage or load errors. A malformed
// //cbvrvet: directive is a hard error, never a silently disabled
// check.
package main

import (
	"fmt"
	"os"

	"cbvr/tools/cbvrvet/analyzers"
	"cbvr/tools/cbvrvet/driver"
)

func main() {
	suite := analyzers.All()
	// go vet protocol (-V=full / -flags / unit.cfg) exits internally.
	driver.MaybeUnitVet(suite)

	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-list" {
		for _, a := range suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: cbvrvet [-list] <package-pattern>...")
		os.Exit(2)
	}
	n, err := driver.Run(os.Stderr, "", args, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbvrvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "cbvrvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
