package analyzers_test

import (
	"testing"

	"cbvr/tools/cbvrvet/analyzers"
	"cbvr/tools/cbvrvet/vettest"
)

func TestLockorder(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), analyzers.Lockorder, "lockorder")
}

func TestLockorderUnknownLock(t *testing.T) {
	vettest.RunExpectError(t, vettest.TestData(t), analyzers.Lockorder,
		"lockorderbad", `lockorderbad\.go:7:.*names unknown lock "ghostMu"`)
}

func TestLockorderAmbiguousLock(t *testing.T) {
	vettest.RunExpectError(t, vettest.TestData(t), analyzers.Lockorder,
		"lockorderambig", `lockorderambig\.go:7:.*"mu" is ambiguous.*qualify it as Type\.field`)
}
