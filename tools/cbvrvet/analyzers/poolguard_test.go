package analyzers_test

import (
	"testing"

	"cbvr/tools/cbvrvet/analyzers"
	"cbvr/tools/cbvrvet/vettest"
)

func TestPoolguard(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), analyzers.Poolguard, "poolguard")
}
