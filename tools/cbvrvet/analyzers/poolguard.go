package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cbvr/tools/cbvrvet/analysis"
)

// Poolguard tracks pooled values through each function: a local bound
// to sync.Pool.Get / a *Pool get method / an Acquire* constructor must,
// on every path, be released (Release/release/Free/Recycle on the
// value, or Put/put into a pool), escape (returned, stored into a
// structure, captured, or passed on — ownership transfers), or be
// covered by a deferred release. Using or re-releasing a value after
// its release is an error.
var Poolguard = &analysis.Analyzer{
	Name: "poolguard",
	Doc: "check that pooled values (sync.Pool.Get, Acquire*, pool get methods) " +
		"are released on all return paths and never used after release",
	Run: runPoolguard,
}

type poolState int

const (
	poolLive     poolState = iota // acquired, not yet released
	poolReleased                  // returned to its pool
	poolEscaped                   // ownership left this function (or unknown)
)

// poolVar is one tracked local.
type poolVar struct {
	obj     *types.Var
	acquire token.Pos
	// deferred marks a release registered via defer: the value is
	// covered on every path from that point on.
	deferred bool
}

// poolScope is the per-function-walk state.
type poolScope struct {
	pass   *analysis.Pass
	vars   []*poolVar
	states map[*types.Var]poolState
	// leaked dedups not-released reports per acquisition site.
	leaked map[*types.Var]bool
}

func runPoolguard(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPoolFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

func checkPoolFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sc := &poolScope{
		pass:   pass,
		states: make(map[*types.Var]poolState),
		leaked: make(map[*types.Var]bool),
	}
	terminated := sc.walkStmts(body.List)
	if !terminated {
		sc.reportLeaks(body.End())
	}
}

// isPoolType reports whether t (after deref) is a named type whose name
// contains "pool" (sync.Pool, rasterPool, scanScratchPool's sync.Pool).
func isPoolType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	return strings.Contains(strings.ToLower(named.Obj().Name()), "pool")
}

// acquireCall reports whether call yields a pooled value: sync.Pool.Get
// (or any get/Get method on a pool-named type), or an Acquire*/acquire*
// function.
func (sc *poolScope) acquireCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Get" || fun.Sel.Name == "get" {
			if tv, ok := sc.pass.TypesInfo.Types[fun.X]; ok && isPoolType(tv.Type) {
				return true
			}
		}
		return strings.HasPrefix(fun.Sel.Name, "Acquire") || strings.HasPrefix(fun.Sel.Name, "acquire")
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "Acquire") || strings.HasPrefix(fun.Name, "acquire")
	}
	return false
}

// releaseTarget returns the tracked variable a call releases, or nil:
// x.Release()/x.release()/x.Free()/x.Recycle() release x;
// pool.Put(x)/pool.put(x) and Recycle(x) release x.
func (sc *poolScope) releaseTarget(call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Release", "release", "Free", "free":
		if v := sc.trackedIdent(sel.X); v != nil {
			return v
		}
	case "Put", "put", "Recycle", "recycle":
		if len(call.Args) != 1 {
			return nil
		}
		poolRecv := false
		if tv, ok := sc.pass.TypesInfo.Types[sel.X]; ok && isPoolType(tv.Type) {
			poolRecv = true
		}
		if poolRecv || sel.Sel.Name == "Recycle" || sel.Sel.Name == "recycle" {
			if v := sc.trackedIdent(call.Args[0]); v != nil {
				return v
			}
		}
	}
	return nil
}

// trackedIdent resolves e to a tracked local variable, or nil.
func (sc *poolScope) trackedIdent(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := sc.pass.ObjectOf(id).(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := sc.states[v]; !tracked {
		return nil
	}
	return v
}

func (sc *poolScope) findVar(v *types.Var) *poolVar {
	for _, pv := range sc.vars {
		if pv.obj == v {
			return pv
		}
	}
	return nil
}

// walkStmts interprets stmts in order; true means every path through
// them returns (or panics).
func (sc *poolScope) walkStmts(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if sc.walkStmt(s) {
			return true
		}
	}
	return false
}

func (sc *poolScope) walkStmt(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		sc.walkAssign(st)
	case *ast.ExprStmt:
		sc.walkExpr(st.X)
	case *ast.DeferStmt:
		sc.walkDefer(st)
	case *ast.GoStmt:
		// The goroutine body runs later; anything it touches escapes.
		sc.escapeAll(st.Call)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			sc.escapeExpr(r)
		}
		sc.reportLeaks(st.Pos())
		return true
	case *ast.IfStmt:
		if st.Init != nil {
			sc.walkStmt(st.Init)
		}
		sc.useExpr(st.Cond)
		thenStates := cloneStates(sc.states)
		thenTerm := sc.walkStmtsIn(&thenStates, st.Body.List)
		elseStates := cloneStates(sc.states)
		elseTerm := false
		if st.Else != nil {
			elseTerm = sc.walkStmtsIn(&elseStates, []ast.Stmt{st.Else})
		}
		sc.states = mergeStates(thenStates, thenTerm, elseStates, elseTerm)
	case *ast.BlockStmt:
		return sc.walkStmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			sc.walkStmt(st.Init)
		}
		if st.Cond != nil {
			sc.useExpr(st.Cond)
		}
		body := cloneStates(sc.states)
		sc.walkStmtsIn(&body, st.Body.List)
		sc.states = mergeStates(sc.states, false, body, false)
	case *ast.RangeStmt:
		sc.useExpr(st.X)
		body := cloneStates(sc.states)
		sc.walkStmtsIn(&body, st.Body.List)
		sc.states = mergeStates(sc.states, false, body, false)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Conservative: walk each case with a cloned state and merge.
		var bodies [][]ast.Stmt
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				sc.walkStmt(sw.Init)
			}
			if sw.Tag != nil {
				sc.useExpr(sw.Tag)
			}
			for _, c := range sw.Body.List {
				bodies = append(bodies, c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range sw.Body.List {
				bodies = append(bodies, c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range sw.Body.List {
				bodies = append(bodies, c.(*ast.CommClause).Body)
			}
		}
		merged := cloneStates(sc.states)
		mergedTerm := true
		for _, b := range bodies {
			cs := cloneStates(sc.states)
			term := sc.walkStmtsIn(&cs, b)
			if !term {
				merged = mergeStates(merged, mergedTerm, cs, false)
				mergedTerm = false
			}
		}
		if !mergedTerm {
			sc.states = merged
		}
	case *ast.SendStmt:
		sc.escapeExpr(st.Value)
		sc.useExpr(st.Chan)
	case *ast.IncDecStmt:
		sc.useExpr(st.X)
	case *ast.LabeledStmt:
		return sc.walkStmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.walkExpr(v)
					}
				}
			}
		}
	}
	return false
}

// walkStmtsIn runs walkStmts against a forked state map.
func (sc *poolScope) walkStmtsIn(states *map[*types.Var]poolState, stmts []ast.Stmt) bool {
	saved := sc.states
	sc.states = *states
	term := sc.walkStmts(stmts)
	*states = sc.states
	sc.states = saved
	return term
}

func cloneStates(m map[*types.Var]poolState) map[*types.Var]poolState {
	out := make(map[*types.Var]poolState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeStates joins two branch outcomes; a terminated branch
// contributes nothing. A variable whose state differs across live
// branches becomes escaped (unknown), so only definite errors report.
func mergeStates(a map[*types.Var]poolState, aTerm bool, b map[*types.Var]poolState, bTerm bool) map[*types.Var]poolState {
	if aTerm {
		return b
	}
	if bTerm {
		return a
	}
	out := make(map[*types.Var]poolState, len(a))
	for k, av := range a {
		if bv, ok := b[k]; ok && bv == av {
			out[k] = av
		} else {
			out[k] = poolEscaped
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			out[k] = bv
		}
	}
	return out
}

// walkAssign handles acquisitions (x := pool.Get().(*T)) and escapes
// through stores.
func (sc *poolScope) walkAssign(st *ast.AssignStmt) {
	// RHS first (evaluation order).
	acquired := make([]bool, len(st.Rhs))
	for i, rhs := range st.Rhs {
		if call := unwrapAcquire(rhs); call != nil && sc.acquireCall(call) {
			acquired[i] = true
			continue
		}
		sc.walkExpr(rhs)
	}
	for i, lhs := range st.Lhs {
		if i < len(acquired) && acquired[i] && len(st.Lhs) == len(st.Rhs) {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if v, ok := sc.pass.ObjectOf(id).(*types.Var); ok {
					sc.track(v, st.Rhs[i].Pos())
					continue
				}
			}
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			// Reassigning a tracked variable drops the old value from
			// tracking (aliasing is beyond this analysis).
			if v := sc.trackedIdent(l); v != nil {
				sc.states[v] = poolEscaped
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			sc.useExpr(lhs)
		case *ast.StarExpr:
			sc.useExpr(l.X)
		}
	}
	// Stores of a tracked value into fields/slices/maps escape it.
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			if acquired[i] {
				continue
			}
			switch lhs.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				sc.escapeExpr(st.Rhs[i])
			}
		}
	}
}

// unwrapAcquire strips type assertions: pool.Get().(*T).
func unwrapAcquire(e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	if call, ok := e.(*ast.CallExpr); ok {
		return call
	}
	return nil
}

func (sc *poolScope) track(v *types.Var, pos token.Pos) {
	sc.states[v] = poolLive
	sc.vars = append(sc.vars, &poolVar{obj: v, acquire: pos})
}

// walkDefer registers deferred releases; any other deferred use of a
// tracked value escapes it (it outlives this walk).
func (sc *poolScope) walkDefer(st *ast.DeferStmt) {
	if v := sc.releaseTarget(st.Call); v != nil {
		if pv := sc.findVar(v); pv != nil {
			pv.deferred = true
		}
		return
	}
	if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
		// A deferred closure releasing a tracked value covers it too.
		covered := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if v := sc.releaseTarget(call); v != nil {
					if pv := sc.findVar(v); pv != nil {
						pv.deferred = true
						covered = true
					}
				}
			}
			return true
		})
		if covered {
			return
		}
	}
	sc.escapeAll(st.Call)
}

// walkExpr processes an expression for acquires buried in calls,
// releases, uses and captures.
func (sc *poolScope) walkExpr(e ast.Expr) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if v := sc.releaseTarget(call); v != nil {
			sc.release(v, call.Pos())
			return
		}
		if sc.acquireCall(call) {
			// Result dropped on the floor: acquired and never bound.
			sc.pass.Reportf(call.Pos(), "pooled value acquired here is discarded without being released")
			return
		}
	}
	sc.useExpr(e)
}

// release transitions v to released, reporting a double release.
func (sc *poolScope) release(v *types.Var, pos token.Pos) {
	switch sc.states[v] {
	case poolReleased:
		sc.pass.Reportf(pos, "%s is released twice (second release here)", v.Name())
	case poolLive:
		sc.states[v] = poolReleased
	}
}

// useExpr scans e for identifier uses of tracked variables: a use of a
// released value is an error; passing a live value to a non-release
// call, capturing it in a function literal, or placing it in a
// composite literal transfers ownership (escapes).
func (sc *poolScope) useExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if v := sc.releaseTarget(x); v != nil {
				sc.release(v, x.Pos())
				// Still scan the receiver side.
				return false
			}
			// Arguments passed to a call: ownership transfer.
			for _, arg := range x.Args {
				if v := sc.trackedIdent(arg); v != nil {
					sc.useOrEscape(v, arg.Pos())
				} else {
					sc.useExpr(arg)
				}
			}
			sc.useExpr(x.Fun)
			return false
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				inner := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					inner = kv.Value
				}
				if v := sc.trackedIdent(inner); v != nil {
					sc.useOrEscape(v, inner.Pos())
				} else {
					sc.useExpr(inner)
				}
			}
			return false
		case *ast.FuncLit:
			// Capture: outer tracked vars referenced inside escape; the
			// literal's own body is a fresh scope walk.
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v := sc.trackedIdent(id); v != nil {
						sc.states[v] = poolEscaped
					}
				}
				return true
			})
			checkPoolFunc(sc.pass, x.Body)
			return false
		case *ast.Ident:
			if v := sc.trackedIdent(x); v != nil && sc.states[v] == poolReleased {
				sc.pass.Reportf(x.Pos(), "%s is used after being released to its pool", v.Name())
			}
		}
		return true
	})
}

// useOrEscape flags use-after-release, else transfers ownership.
func (sc *poolScope) useOrEscape(v *types.Var, pos token.Pos) {
	if sc.states[v] == poolReleased {
		sc.pass.Reportf(pos, "%s is used after being released to its pool", v.Name())
		return
	}
	sc.states[v] = poolEscaped
}

// escapeExpr marks every tracked variable mentioned in e as escaped
// (after flagging released ones).
func (sc *poolScope) escapeExpr(e ast.Expr) {
	if e == nil {
		return
	}
	if v := sc.trackedIdent(e); v != nil {
		sc.useOrEscape(v, e.Pos())
		return
	}
	sc.useExpr(e)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := sc.trackedIdent(id); v != nil && sc.states[v] == poolLive {
				sc.states[v] = poolEscaped
			}
		}
		return true
	})
}

func (sc *poolScope) escapeAll(call *ast.CallExpr) {
	sc.escapeExpr(call.Fun)
	for _, arg := range call.Args {
		sc.escapeExpr(arg)
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := sc.trackedIdent(id); v != nil {
					sc.states[v] = poolEscaped
				}
			}
			return true
		})
		checkPoolFunc(sc.pass, fl.Body)
	}
}

// reportLeaks flags every variable still live (and not defer-covered)
// at a function exit, once per acquisition.
func (sc *poolScope) reportLeaks(token.Pos) {
	for _, pv := range sc.vars {
		if sc.states[pv.obj] == poolLive && !pv.deferred && !sc.leaked[pv.obj] {
			sc.leaked[pv.obj] = true
			sc.pass.Reportf(pv.acquire, "pooled value %s acquired here is not released on every return path (release it, defer its release, or hand it off)", pv.obj.Name())
		}
	}
}
