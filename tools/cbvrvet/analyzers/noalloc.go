package analyzers

import (
	"go/ast"
	"go/types"

	"cbvr/tools/cbvrvet/analysis"
)

// Noalloc gates the engine's "0 allocs/op" kernels at lint time: a
// function whose doc comment carries //cbvrvet:noalloc is rejected if
// its body contains an allocating construct — make, new, append, a
// slice/map/pointer composite literal, a map write, a function
// literal (closures allocate), a go statement, a defer inside a loop
// (function-top defers are open-coded and free; looped defers heap a
// record per iteration), or a conversion to string or a slice. Plain
// function calls are not flagged: a cold error path may call
// fmt.Errorf, and called kernels carry their own annotation.
var Noalloc = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "reject allocating constructs inside functions annotated " +
		"//cbvrvet:noalloc (the batch distance kernels and arena sweeps)",
	Run: runNoalloc,
}

func runNoalloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.Directives.NoAlloc(fd) {
				continue
			}
			checkNoalloc(pass, fd)
		}
	}
	return nil
}

func checkNoalloc(pass *analysis.Pass, fd *ast.FuncDecl) {
	report := func(n ast.Node, what string) {
		pass.Reportf(n.Pos(), "%s in //cbvrvet:noalloc function %s", what, fd.Name.Name)
	}
	// A defer at function top is open-coded (no allocation); a defer
	// executed per loop iteration heap-allocates its record.
	deferInLoop := make(map[*ast.DeferStmt]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			if d, ok := m.(*ast.DeferStmt); ok {
				deferInLoop[d] = true
			}
			return true
		})
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						report(x, "make allocates")
					case "new":
						report(x, "new allocates")
					case "append":
						report(x, "append may grow its backing array")
					}
					return true
				}
			}
			// Conversions to string or slice types copy/allocate.
			if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(x, "conversion to a slice type allocates")
				case *types.Basic:
					if tv.Type.Underlying().(*types.Basic).Info()&types.IsString != 0 {
						if len(x.Args) == 1 {
							if atv, ok := pass.TypesInfo.Types[x.Args[0]]; ok {
								if _, isSlice := atv.Type.Underlying().(*types.Slice); isSlice {
									report(x, "[]byte/[]rune to string conversion allocates")
								}
							}
						}
					}
				}
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[x].Type.Underlying().(type) {
			case *types.Slice:
				report(x, "slice literal allocates")
			case *types.Map:
				report(x, "map literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x, "&composite literal allocates")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := pass.TypesInfo.Types[idx.X].Type.Underlying().(*types.Map); isMap {
						report(lhs, "map write may allocate")
					}
				}
			}
		case *ast.FuncLit:
			report(x, "function literal allocates (closure)")
			return false
		case *ast.GoStmt:
			report(x, "go statement allocates a goroutine")
		case *ast.DeferStmt:
			if deferInLoop[x] {
				report(x, "defer inside a loop allocates per iteration")
			}
		}
		return true
	})
}
