package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"cbvr/tools/cbvrvet/analysis"
)

// Errvet is the PR 3 errcheck-style storage-durability check, migrated
// from tools/errvet into the multichecker: in the vstore packages, a
// Sync, Close or Truncate call whose error result is dropped — a bare
// statement, a defer, a go statement, or an assignment to blank,
// including inside closures — is flagged. fsyncgate-family durability
// bugs hide behind exactly such calls. Intended drops carry an
// "errvet:ignore <reason>" comment on the same line or the line above.
//
// Unlike the original AST-only tool, the migrated analyzer is
// type-aware: only calls that actually return an error are flagged.
var Errvet = &analysis.Analyzer{
	Name: "errvet",
	Doc: "flag dropped errors of Sync/Close/Truncate calls in the storage " +
		"write path (vstore packages)",
	Run: runErrvet,
}

// errvetScope limits the check to the storage layer; defer f.Close()
// is idiomatic elsewhere.
var errvetScope = regexp.MustCompile(`(^|/)vstore(/|$)`)

// errvetChecked are the method names whose dropped errors are hunted.
var errvetChecked = map[string]bool{"Sync": true, "Close": true, "Truncate": true}

func runErrvet(pass *analysis.Pass) error {
	if !errvetScope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// Test cleanup (defer db.Close() and friends) is idiomatic and
		// not the durability write path this analyzer guards; the check
		// covers production vstore code only.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call := errvetCall(pass, st.X); call != nil {
					reportDropped(pass, call, "bare statement")
				}
			case *ast.DeferStmt:
				if call := errvetCall(pass, st.Call); call != nil {
					reportDropped(pass, call, "defer")
				}
			case *ast.GoStmt:
				if call := errvetCall(pass, st.Call); call != nil {
					reportDropped(pass, call, "go statement")
				}
			case *ast.AssignStmt:
				// Only flag when every destination is blank.
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				for _, rhs := range st.Rhs {
					if call := errvetCall(pass, rhs); call != nil {
						reportDropped(pass, call, "assigned to blank")
					}
				}
			}
			return true
		})
	}
	return nil
}

func reportDropped(pass *analysis.Pass, call *ast.CallExpr, how string) {
	sel := call.Fun.(*ast.SelectorExpr)
	pass.Reportf(call.Pos(), "%s() error dropped (%s); handle it or annotate errvet:ignore", sel.Sel.Name, how)
}

// errvetCall returns the call when expr is a hunted method call whose
// signature returns an error, nil otherwise.
func errvetCall(pass *analysis.Pass, expr ast.Expr) *ast.CallExpr {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !errvetChecked[sel.Sel.Name] {
		return nil
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return nil
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return nil
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return nil
	}
	return call
}
