// Package analyzers holds the five cbvrvet checks: lockorder, ctxloop,
// poolguard, noalloc and errvet. Each is an *analysis.Analyzer run by
// the cbvrvet multichecker (standalone or as a go vet -vettool).
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cbvr/tools/cbvrvet/analysis"
)

// Lockorder checks the documented mutex acquisition order.
//
// Locks are named in //cbvrvet:lockorder directives as "Type.field"
// (type name matched case-insensitively) or a bare field name when it
// is unambiguous in the package. The walk is linear per function:
// acquiring a lock that the documented order places before a lock
// already held is a violation, as is (transitively, through
// same-package callees) re-acquiring a held write lock, or calling a
// blocking/file-I/O function while a //cbvrvet:lockorder noio lock is
// held.
var Lockorder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check mutex acquisition against the //cbvrvet:lockorder directives " +
		"(ordering, transitive self-deadlock, and no I/O under noio locks)",
	Run: runLockorder,
}

// lockID is one tracked mutex: the struct field object plus its
// canonical display name from the directive.
type lockID struct {
	field *types.Var
	name  string
}

type lockorderState struct {
	pass *analysis.Pass
	// locks maps every tracked field object to its directive name.
	locks map[*types.Var]string
	// after[a] is the set of lock names documented to be acquired
	// strictly after a (transitive closure of the directives).
	after map[string]map[string]bool
	noio  map[string]bool

	decls map[*types.Func]*ast.FuncDecl
	// acquires memoizes, per package function, the locks it (or its
	// same-package callees) may acquire; write is true when any
	// acquisition on the path is a write lock.
	acquires map[*types.Func]map[string]bool
	writeAcq map[*types.Func]map[string]bool
	// doesIO memoizes whether a function (transitively, same package)
	// calls into a blocking/file-I/O standard library package.
	doesIO map[*types.Func]bool
	inProg map[*types.Func]bool
	ioProg map[*types.Func]bool
}

func runLockorder(pass *analysis.Pass) error {
	st := &lockorderState{
		pass:     pass,
		locks:    make(map[*types.Var]string),
		after:    make(map[string]map[string]bool),
		noio:     make(map[string]bool),
		decls:    make(map[*types.Func]*ast.FuncDecl),
		acquires: make(map[*types.Func]map[string]bool),
		writeAcq: make(map[*types.Func]map[string]bool),
		doesIO:   make(map[*types.Func]bool),
		inProg:   make(map[*types.Func]bool),
		ioProg:   make(map[*types.Func]bool),
	}
	if err := st.resolveDirectives(); err != nil {
		return err
	}
	if len(st.locks) == 0 {
		return nil // nothing documented in this package
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				st.decls[fn] = fd
			}
		}
	}
	for _, fd := range st.decls {
		st.checkFunc(fd)
	}
	return nil
}

// mutexField reports whether the field's type is sync.Mutex or
// sync.RWMutex.
func mutexField(v *types.Var) bool {
	named, ok := v.Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// resolveDirectives binds each directive lock token to a struct field
// in the package and builds the transitive order relation.
func (st *lockorderState) resolveDirectives() error {
	// Candidate locks: every sync.Mutex/RWMutex field of every named
	// struct type in the package scope.
	type candidate struct {
		typeName string
		field    *types.Var
	}
	var cands []candidate
	scope := st.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		strct, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < strct.NumFields(); i++ {
			if f := strct.Field(i); mutexField(f) {
				cands = append(cands, candidate{typeName: tn.Name(), field: f})
			}
		}
	}
	resolve := func(token string, pos token.Position) (*types.Var, error) {
		typePart, fieldPart, qualified := strings.Cut(token, ".")
		var matches []candidate
		for _, c := range cands {
			if qualified {
				if strings.EqualFold(c.typeName, typePart) && c.field.Name() == fieldPart {
					matches = append(matches, c)
				}
			} else if c.field.Name() == token {
				matches = append(matches, c)
			}
		}
		switch len(matches) {
		case 1:
			return matches[0].field, nil
		case 0:
			return nil, fmt.Errorf("%s: lockorder directive names unknown lock %q (no matching sync.Mutex/RWMutex struct field in package %s)", pos, token, st.pass.Pkg.Path())
		default:
			var names []string
			for _, m := range matches {
				names = append(names, m.typeName+"."+m.field.Name())
			}
			return nil, fmt.Errorf("%s: lockorder directive lock %q is ambiguous in package %s (matches %s); qualify it as Type.field", pos, token, st.pass.Pkg.Path(), strings.Join(names, ", "))
		}
	}

	addLock := func(token string, pos token.Position) error {
		f, err := resolve(token, pos)
		if err != nil {
			return err
		}
		if prev, ok := st.locks[f]; ok && prev != token {
			// Same field named two ways across directives; keep the first
			// spelling as canonical.
			return nil
		}
		st.locks[f] = token
		return nil
	}
	for _, o := range st.pass.Directives.Orders {
		if err := addLock(o.Earlier, o.Pos); err != nil {
			return err
		}
		if err := addLock(o.Later, o.Pos); err != nil {
			return err
		}
		if st.after[o.Earlier] == nil {
			st.after[o.Earlier] = make(map[string]bool)
		}
		st.after[o.Earlier][o.Later] = true
	}
	for _, n := range st.pass.Directives.NoIO {
		if err := addLock(n.Lock, n.Pos); err != nil {
			return err
		}
		st.noio[n.Lock] = true
	}
	// Transitive closure (the lock sets are tiny; repeated passes are fine).
	for changed := true; changed; {
		changed = false
		for a, bs := range st.after {
			for b := range bs {
				for c := range st.after[b] {
					if !st.after[a][c] {
						st.after[a][c] = true
						changed = true
					}
				}
			}
		}
	}
	for a := range st.after {
		if st.after[a][a] {
			return fmt.Errorf("package %s: cbvrvet:lockorder directives form a cycle through %q", st.pass.Pkg.Path(), a)
		}
	}
	return nil
}

// lockExprName resolves an expression like db.mu or w.db.stageMu to the
// tracked lock's directive name ("" when untracked).
func (st *lockorderState) lockExprName(e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if f, ok := st.pass.ObjectOf(sel.Sel).(*types.Var); ok {
		return st.locks[f]
	}
	return ""
}

// lockEvent is one step of a function's linear lock walk.
type lockEvent struct {
	kind   int // 0 acquire, 1 release, 2 call
	lock   string
	write  bool
	callee *types.Func
	pos    token.Pos
}

// collectEvents walks a function body in source order, producing
// acquire / release / call events. Function-literal bodies are walked
// inline (closures in this codebase run on the locking goroutine or
// under the caller's lock via parallelFor), but each literal is its own
// defer scope: a deferred Unlock fires at the end of the literal that
// registered it, not at the end of the outer function — so a helper
// closure that locks and defer-unlocks does not appear to hold its lock
// over the rest of the enclosing function.
func (st *lockorderState) collectEvents(body ast.Node) []lockEvent {
	var events []lockEvent
	var deferred []lockEvent // events whose calls run at this scope's end
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			events = append(events, st.collectEvents(x.Body)...)
			return false
		case *ast.DeferStmt:
			if sel, ok := x.Call.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") {
				if name := st.lockExprName(sel.X); name != "" {
					deferred = append(deferred, lockEvent{kind: 1, lock: name, pos: x.Call.Pos()})
					return false
				}
			}
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				deferred = append(deferred, st.collectEvents(fl.Body)...)
				return false
			}
			if callee := st.pass.CalleeFunc(x.Call); callee != nil {
				deferred = append(deferred, lockEvent{kind: 2, callee: callee, pos: x.Call.Pos()})
			}
			return false
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if name := st.lockExprName(sel.X); name != "" {
						events = append(events, lockEvent{kind: 0, lock: name, write: sel.Sel.Name == "Lock", pos: x.Pos()})
						return true
					}
				case "Unlock", "RUnlock":
					if name := st.lockExprName(sel.X); name != "" {
						events = append(events, lockEvent{kind: 1, lock: name, pos: x.Pos()})
						return true
					}
				}
			}
			if callee := st.pass.CalleeFunc(x); callee != nil {
				events = append(events, lockEvent{kind: 2, callee: callee, pos: x.Pos()})
			}
			return true
		}
		return true
	})
	return append(events, deferred...)
}

type heldLock struct {
	name  string
	write bool
}

func (st *lockorderState) checkFunc(fd *ast.FuncDecl) {
	var held []heldLock
	holds := func(name string) *heldLock {
		for i := range held {
			if held[i].name == name {
				return &held[i]
			}
		}
		return nil
	}
	reportedIO := make(map[token.Pos]bool)
	for _, ev := range st.collectEvents(fd.Body) {
		switch ev.kind {
		case 0: // acquire
			if h := holds(ev.lock); h != nil && (h.write || ev.write) {
				st.pass.Reportf(ev.pos, "acquires %s while already holding it (self-deadlock)", ev.lock)
			}
			for _, h := range held {
				if st.after[ev.lock][h.name] {
					st.pass.Reportf(ev.pos, "acquires %s while holding %s; documented order is %s < %s", ev.lock, h.name, ev.lock, h.name)
				}
			}
			held = append(held, heldLock{name: ev.lock, write: ev.write})
		case 1: // release (deferred ones are sequenced at their scope's end)
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].name == ev.lock {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case 2: // call
			if len(held) == 0 {
				continue
			}
			acq, wacq := st.calleeAcquires(ev.callee)
			for name := range acq {
				if h := holds(name); h != nil && (h.write || wacq[name]) {
					st.pass.Reportf(ev.pos, "calls %s, which acquires %s while it is already held (self-deadlock)", ev.callee.Name(), name)
					continue
				}
				for _, h := range held {
					if st.after[name][h.name] {
						st.pass.Reportf(ev.pos, "calls %s, which acquires %s while holding %s; documented order is %s < %s", ev.callee.Name(), name, h.name, name, h.name)
					}
				}
			}
			for _, h := range held {
				if st.noio[h.name] && st.calleeDoesIO(ev.callee) && !reportedIO[ev.pos] {
					reportedIO[ev.pos] = true
					st.pass.Reportf(ev.pos, "calls blocking/file-I/O function %s while holding %s (marked cbvrvet:lockorder noio)", calleeLabel(ev.callee), h.name)
				}
			}
		}
	}
}

func calleeLabel(f *types.Func) string {
	if f.Pkg() != nil && f.Pkg().Path() != "" {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// ioPackages are standard-library packages whose calls count as
// blocking/file I/O for noio locks. Calls into other packages of this
// module are resolved transitively when their source is in the
// analyzed package, and treated as unknown (clean) otherwise.
var ioPackages = map[string]bool{
	"os":       true,
	"io":       true,
	"bufio":    true,
	"net":      true,
	"net/http": true,
	"syscall":  true,
}

func (st *lockorderState) calleeDoesIO(f *types.Func) bool {
	if f.Pkg() == nil {
		return false
	}
	if ioPackages[f.Pkg().Path()] {
		return true
	}
	if f.Pkg() != st.pass.Pkg {
		return false
	}
	if v, ok := st.doesIO[f]; ok {
		return v
	}
	fd, ok := st.decls[f]
	if !ok || st.ioProg[f] {
		return false
	}
	st.ioProg[f] = true
	result := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if result {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := st.pass.CalleeFunc(call); callee != nil && callee != f && st.calleeDoesIO(callee) {
				result = true
			}
		}
		return true
	})
	st.ioProg[f] = false
	st.doesIO[f] = result
	return result
}

// calleeAcquires returns the lock names f may acquire, directly or via
// same-package callees, with the subset acquired as write locks.
func (st *lockorderState) calleeAcquires(f *types.Func) (map[string]bool, map[string]bool) {
	if f.Pkg() != st.pass.Pkg {
		return nil, nil
	}
	if acq, ok := st.acquires[f]; ok {
		return acq, st.writeAcq[f]
	}
	fd, ok := st.decls[f]
	if !ok || st.inProg[f] {
		return nil, nil
	}
	st.inProg[f] = true
	acq := make(map[string]bool)
	wacq := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			if name := st.lockExprName(sel.X); name != "" {
				acq[name] = true
				if sel.Sel.Name == "Lock" {
					wacq[name] = true
				}
				return true
			}
		}
		if callee := st.pass.CalleeFunc(call); callee != nil && callee != f {
			sub, wsub := st.calleeAcquires(callee)
			for name := range sub {
				acq[name] = true
			}
			for name := range wsub {
				wacq[name] = true
			}
		}
		return true
	})
	st.inProg[f] = false
	st.acquires[f] = acq
	st.writeAcq[f] = wacq
	return acq, wacq
}
