package analyzers

import "cbvr/tools/cbvrvet/analysis"

// All returns the full cbvrvet suite in reporting order. CI greps the
// -list output for this count; adding or removing an analyzer must
// show up there.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Lockorder, Ctxloop, Poolguard, Noalloc, Errvet}
}
