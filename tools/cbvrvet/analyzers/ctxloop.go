package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"cbvr/tools/cbvrvet/analysis"
)

// Ctxloop checks that cancellable functions stay cancellable: any
// function that takes a context.Context (and any HTTP handler, whose
// context is r.Context()) must check the context inside every loop
// that performs real per-iteration work — a frame decode, a store
// read, an ingest. A loop is satisfied by ctx.Err()/ctx.Done() inside
// the body or by passing the context into a callee (which is then
// itself in scope if it is in this package); range-over-channel loops
// are exempt, as the sender owns cancellation there.
var Ctxloop = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "check that context-taking functions and HTTP handlers check their " +
		"context inside loops that do per-iteration work",
	Run: runCtxloop,
}

// cheapStdPackages are standard-library packages whose calls never
// block meaningfully; a loop whose only calls land here needs no
// cancellation check.
var cheapStdPackages = map[string]bool{
	"bytes": true, "cmp": true, "container/heap": true,
	"encoding/binary": true, "errors": true, "fmt": true,
	"hash": true, "hash/crc32": true, "maps": true, "math": true,
	"math/bits": true, "math/rand": true, "slices": true, "sort": true,
	"strconv": true, "strings": true, "sync": true, "sync/atomic": true,
	"unicode": true, "unicode/utf8": true,
}

// cheapNames are method/function names that are cheap accessors or
// in-memory data-structure operations regardless of package.
var cheapNames = map[string]bool{
	"Get": true, "Push": true, "Pop": true, "Merge": true, "Join": true,
	"Observe": true, "Scale": true, "ShardFor": true, "Len": true,
	"Cap": true, "String": true, "Error": true, "Err": true, "Done": true,
	"Load": true, "Store": true, "Add": true, "Sub": true, "Overlaps": true,
	"Sorted": true, "Min": true, "Max": true, "Abs": true, "Context": true,
}

func runCtxloop(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasCtxParam(pass, fd) {
				checkCtxLoops(pass, fd.Body, "ctx")
			} else if isHTTPHandler(pass, fd) {
				checkCtxLoops(pass, fd.Body, "r.Context()")
			}
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func hasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isHTTPHandler matches the (http.ResponseWriter, *http.Request)
// signature shape, with or without a receiver.
func isHTTPHandler(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 2 {
		return false
	}
	return isNamedHTTP(sig.Params().At(0).Type(), "ResponseWriter") &&
		isNamedHTTP(derefType(sig.Params().At(1).Type()), "Request")
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func isNamedHTTP(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}

// checkCtxLoops reports every loop in body that performs work without
// a context check. Nested function literals are scanned too: the
// engine's worker pools loop inside closures.
func checkCtxLoops(pass *analysis.Pass, body *ast.BlockStmt, ctxLabel string) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			loopBody = loop.Body
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.Types[loop.X].Type.Underlying().(*types.Chan); ok {
				return true // channel receive loops end when the sender cancels
			}
			loopBody = loop.Body
		default:
			return true
		}
		if work := findWorkCall(pass, loopBody); work != "" && !loopChecksCtx(pass, loopBody) {
			pass.Reportf(n.Pos(), "loop calls %s but never checks %s; cancellation cannot interrupt it", work, ctxLabel)
		}
		return true
	})
}

// findWorkCall returns a label for the first call in the loop body that
// does real per-iteration work, or "".
func findWorkCall(pass *analysis.Pass, body *ast.BlockStmt) string {
	var work string
	ast.Inspect(body, func(n ast.Node) bool {
		if work != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure's loops are checked on their own; its body is not
			// this loop's per-iteration work.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := pass.CalleeFunc(call)
		if callee == nil || callee.Pkg() == nil {
			return true // builtins, func values, conversions
		}
		if callee.Pkg() == pass.Pkg {
			return true // same-package callees are analyzed on their own
		}
		if cheapStdPackages[callee.Pkg().Path()] {
			return true
		}
		if cheapNames[callee.Name()] || strings.HasPrefix(callee.Name(), "New") {
			return true
		}
		work = callee.Pkg().Name() + "." + callee.Name()
		return false
	})
	return work
}

// loopChecksCtx reports whether the loop body consults a context:
// calling Err/Done on a context value, selecting on Done, or passing a
// context into a callee.
func loopChecksCtx(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // symmetric with findWorkCall
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Err" || sel.Sel.Name == "Done") {
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isContextType(tv.Type) {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if tv, ok := pass.TypesInfo.Types[arg]; ok && isContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
