package analyzers_test

import (
	"strings"
	"testing"

	"cbvr/tools/cbvrvet/analyzers"
	"cbvr/tools/cbvrvet/vettest"
)

// TestErrvet runs the migrated errcheck-style analyzer over a fixture
// package whose import path ("vstore") is inside the storage scope.
func TestErrvet(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), analyzers.Errvet, "vstore")
}

// TestRegistry pins the suite composition CI greps for.
func TestRegistry(t *testing.T) {
	all := analyzers.All()
	if len(all) != 5 {
		t.Fatalf("analyzers.All() has %d analyzers, want 5", len(all))
	}
	want := []string{"lockorder", "ctxloop", "poolguard", "noalloc", "errvet"}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Doc or Run", a.Name)
		}
		if strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q contains whitespace", a.Name)
		}
	}
}
