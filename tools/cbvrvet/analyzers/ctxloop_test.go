package analyzers_test

import (
	"testing"

	"cbvr/tools/cbvrvet/analyzers"
	"cbvr/tools/cbvrvet/vettest"
)

func TestCtxloop(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), analyzers.Ctxloop, "ctxloop")
}

// TestCtxloopRejectsSpacedDirective pins the typo guard end to end: a
// "// cbvrvet:" comment (note the space) fails the run for any
// analyzer, since directives parse before analysis.
func TestCtxloopRejectsSpacedDirective(t *testing.T) {
	vettest.RunExpectError(t, vettest.TestData(t), analyzers.Ctxloop,
		"directivebad", `directivebad\.go:5:.*must start the comment as //cbvrvet:<verb> with no space`)
}
