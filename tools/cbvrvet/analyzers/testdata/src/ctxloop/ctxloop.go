// Package ctxloop exercises the ctxloop analyzer: unchecked work
// loops in context-taking functions and HTTP handlers, the accepted
// check forms, the range-over-channel exemption, and suppression.
package ctxloop

import (
	"context"
	"net/http"
	"os"
)

// sweep does per-iteration work with no cancellation check.
func sweep(ctx context.Context, paths []string) {
	for _, p := range paths { // want `loop calls os\.ReadFile but never checks ctx; cancellation cannot interrupt it`
		os.ReadFile(p)
	}
}

// sweepChecked consults ctx.Err each iteration: negative case.
func sweepChecked(ctx context.Context, paths []string) error {
	for _, p := range paths {
		if err := ctx.Err(); err != nil {
			return err
		}
		os.ReadFile(p)
	}
	return nil
}

// sweepDelegated passes the context into a callee each iteration,
// which also counts as a check.
func sweepDelegated(ctx context.Context, paths []string) {
	for _, p := range paths {
		touch(ctx, p)
		os.ReadFile(p)
	}
}

func touch(ctx context.Context, p string) {}

// handleDump is HTTP-handler-shaped, so its loops must check
// r.Context().
func handleDump(w http.ResponseWriter, r *http.Request) {
	for i := 0; i < 8; i++ { // want `loop calls os\.ReadFile but never checks r\.Context\(\); cancellation cannot interrupt it`
		os.ReadFile("x")
	}
}

// handleDumpChecked is the handler negative case.
func handleDumpChecked(w http.ResponseWriter, r *http.Request) {
	for i := 0; i < 8; i++ {
		if r.Context().Err() != nil {
			return
		}
		os.ReadFile("x")
	}
}

// drain ranges over a channel: the sender owns cancellation, exempt.
func drain(ctx context.Context, ch chan string) {
	for p := range ch {
		os.ReadFile(p)
	}
}

// cheapLoop only calls cheap std functions: no work, no report.
func cheapLoop(ctx context.Context, words []string) int {
	total := 0
	for _, w := range words {
		total += len(w)
	}
	return total
}

// sweepSuppressed is sweep under an ignore directive.
func sweepSuppressed(ctx context.Context, paths []string) {
	//cbvrvet:ignore ctxloop fixture: sweep must run to completion
	for _, p := range paths {
		os.ReadFile(p)
	}
}
