// Package lockorder exercises the lockorder analyzer: direct and
// transitive order violations, self-deadlock, I/O under a noio lock,
// and suppression.
package lockorder

import (
	"os"
	"sync"
)

// The documented order, spelled the way the real tree spells it: one
// qualified token, one bare (unambiguous) token.
//
//cbvrvet:lockorder DB.mu < stageMu
//cbvrvet:lockorder noio stageMu
type DB struct {
	mu      sync.RWMutex
	stageMu sync.Mutex
}

// goodOrder acquires in the documented order: negative case.
func goodOrder(db *DB) {
	db.mu.Lock()
	db.stageMu.Lock()
	db.stageMu.Unlock()
	db.mu.Unlock()
}

// badOrder inverts the documented order: positive case.
func badOrder(db *DB) {
	db.stageMu.Lock()
	db.mu.Lock() // want `acquires DB\.mu while holding stageMu; documented order is DB\.mu < stageMu`
	db.mu.Unlock()
	db.stageMu.Unlock()
}

// selfDeadlock re-acquires a held write lock.
func selfDeadlock(db *DB) {
	db.mu.Lock()
	db.mu.Lock() // want `acquires DB\.mu while already holding it \(self-deadlock\)`
	db.mu.Unlock()
	db.mu.Unlock()
}

// throughCallee reaches the inversion transitively: the callee takes
// db.mu while this function holds stageMu.
func throughCallee(db *DB) {
	db.stageMu.Lock()
	defer db.stageMu.Unlock()
	lockBoth(db) // want `calls lockBoth, which acquires DB\.mu while holding stageMu; documented order is DB\.mu < stageMu`
}

func lockBoth(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
}

// ioUnderStage performs file I/O while holding the noio-marked lock.
func ioUnderStage(db *DB, path string) {
	db.stageMu.Lock()
	os.Remove(path) // want `calls blocking/file-I/O function os\.Remove while holding stageMu \(marked cbvrvet:lockorder noio\)`
	db.stageMu.Unlock()
}

// ioAfterRelease does the same I/O after releasing: negative case.
func ioAfterRelease(db *DB, path string) {
	db.stageMu.Lock()
	db.stageMu.Unlock()
	os.Remove(path)
}

// sequentialReads take and drop the read lock twice; no overlap, no
// report.
func sequentialReads(db *DB) {
	db.mu.RLock()
	db.mu.RUnlock()
	db.mu.RLock()
	db.mu.RUnlock()
}

// suppressedInversion is badOrder under an ignore directive.
func suppressedInversion(db *DB) {
	db.stageMu.Lock()
	//cbvrvet:ignore lockorder fixture: inversion kept to test suppression
	db.mu.Lock()
	db.mu.Unlock()
	db.stageMu.Unlock()
}
