// Package directivebad contains a spaced directive typo, which the
// directive parser rejects with its position.
package directivebad

// cbvrvet:ignore ctxloop this spaced form must be a hard error
func f() {}
