// Package vstore exercises the errvet analyzer. The fixture package's
// import path is "vstore", which is inside the analyzer's storage-layer
// scope; every dropped-error form it hunts appears below, plus the
// type-aware negative and both suppression spellings.
package vstore

import "os"

// dropSync drops the error as a bare statement.
func dropSync(f *os.File) {
	f.Sync() // want `Sync\(\) error dropped \(bare statement\)`
}

// dropClose drops the error behind a defer.
func dropClose(f *os.File) {
	defer f.Close() // want `Close\(\) error dropped \(defer\)`
}

// dropCloseGo drops the error behind a go statement.
func dropCloseGo(f *os.File) {
	go f.Close() // want `Close\(\) error dropped \(go statement\)`
}

// dropBlank discards the error into blank.
func dropBlank(f *os.File) {
	_ = f.Sync() // want `Sync\(\) error dropped \(assigned to blank\)`
}

// dropTruncateClosure drops inside a closure — the original AST tool's
// blind spot, covered by the migrated analyzer.
func dropTruncateClosure(f *os.File) func() {
	return func() {
		f.Truncate(0) // want `Truncate\(\) error dropped \(bare statement\)`
	}
}

// handled checks both errors: negative case.
func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// ring's Truncate returns nothing; the type-aware analyzer leaves it
// alone where the old text matcher would have flagged it.
type ring struct{}

func (ring) Truncate(n int) {}

func truncRing(r ring) {
	r.Truncate(3)
}

// intended uses the legacy suppression spelling on the line above.
func intended(f *os.File) {
	// errvet:ignore fixture: durability not required for this scratch file
	f.Sync()
}

// intended2 uses the cbvrvet:ignore spelling.
func intended2(f *os.File) {
	//cbvrvet:ignore errvet fixture: scratch file, loss is acceptable
	f.Sync()
}
