// Package lockorderambig names a lock with a bare field name that two
// structs share; the analyzer must demand qualification.
package lockorderambig

import "sync"

//cbvrvet:lockorder mu < B.other
type A struct{ mu sync.Mutex }

type B struct {
	mu    sync.Mutex
	other sync.Mutex
}
