// Package lockorderbad has a directive naming a lock that does not
// exist; the analyzer must fail the run, not skip the check.
package lockorderbad

import "sync"

//cbvrvet:lockorder DB.mu < ghostMu
type DB struct {
	mu sync.Mutex
}
