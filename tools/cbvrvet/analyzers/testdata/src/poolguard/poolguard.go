// Package poolguard exercises the poolguard analyzer: leaks on early
// returns, double release, use after release, discarded acquisitions,
// the deferred/escape negative forms, and suppression.
package poolguard

import "sync"

type buffer struct{ data []byte }

func (b *buffer) Release() {}

var bufPool = sync.Pool{New: func() any { return new(buffer) }}

func consume(b *buffer) {}

func acquireBuffer() *buffer { return new(buffer) }

// leak skips the release on the early-return path.
func leak(n int) *buffer {
	b := bufPool.Get().(*buffer) // want `pooled value b acquired here is not released on every return path \(release it, defer its release, or hand it off\)`
	if n > 0 {
		return nil
	}
	bufPool.Put(b)
	return nil
}

// roundTrip releases on the only path: negative case.
func roundTrip() {
	b := bufPool.Get().(*buffer)
	bufPool.Put(b)
}

// double releases twice.
func double() {
	b := bufPool.Get().(*buffer)
	bufPool.Put(b)
	bufPool.Put(b) // want `b is released twice \(second release here\)`
}

// useAfter touches the value once it is back in the pool.
func useAfter() {
	b := bufPool.Get().(*buffer)
	bufPool.Put(b)
	consume(b) // want `b is used after being released to its pool`
}

// deferred covers every path with one defer: negative case.
func deferred(n int) int {
	b := bufPool.Get().(*buffer)
	defer bufPool.Put(b)
	if n > 0 {
		return n
	}
	return len(b.data)
}

// handOff transfers ownership by returning the value: negative case.
func handOff() *buffer {
	b := bufPool.Get().(*buffer)
	return b
}

// acquireLeak covers the Acquire* constructor form.
func acquireLeak() {
	b := acquireBuffer() // want `pooled value b acquired here is not released on every return path \(release it, defer its release, or hand it off\)`
	_ = b
}

// acquireRelease pairs the constructor with the value's own Release.
func acquireRelease() {
	b := acquireBuffer()
	b.Release()
}

// discard drops an acquired value on the floor.
func discard() {
	bufPool.Get() // want `pooled value acquired here is discarded without being released`
}

// suppressedLeak is acquireLeak under an ignore directive.
func suppressedLeak() {
	//cbvrvet:ignore poolguard fixture: leak kept to test suppression
	b := bufPool.Get().(*buffer)
	_ = b
}
