// Package noalloc exercises the noalloc analyzer: each allocating
// construct in an annotated function, the clean negatives (pure
// arithmetic, function-top defer, unannotated functions), and
// suppression.
package noalloc

import "sync"

// grow appends in an annotated function.
//
//cbvrvet:noalloc
func grow(xs []int) []int {
	return append(xs, 1) // want `append may grow its backing array in //cbvrvet:noalloc function grow`
}

// scratch makes a slice.
//
//cbvrvet:noalloc
func scratch(n int) []int {
	return make([]int, n) // want `make allocates in //cbvrvet:noalloc function scratch`
}

// closure returns a function literal.
//
//cbvrvet:noalloc
func closure(n int) func() int {
	return func() int { return n } // want `function literal allocates \(closure\) in //cbvrvet:noalloc function closure`
}

// loopDefer defers per iteration, which heap-allocates the record.
//
//cbvrvet:noalloc
func loopDefer(mu *sync.Mutex) {
	for i := 0; i < 4; i++ {
		mu.Lock()
		defer mu.Unlock() // want `defer inside a loop allocates per iteration in //cbvrvet:noalloc function loopDefer`
	}
}

// sum is allocation-free arithmetic: negative case.
//
//cbvrvet:noalloc
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// locked uses a function-top defer, which is open-coded (free):
// negative case.
//
//cbvrvet:noalloc
func locked(mu *sync.Mutex) int {
	mu.Lock()
	defer mu.Unlock()
	return 1
}

// free is unannotated: allocations are fine.
func free(n int) []int { return make([]int, n) }

// suppressed allocates under an ignore directive.
//
//cbvrvet:noalloc
func suppressed(n int) []int {
	//cbvrvet:ignore noalloc fixture: cold path kept to test suppression
	return make([]int, n)
}
