package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"cbvr/tools/cbvrvet/directive"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// RunPackage runs the analyzers over one package, applying the
// cbvrvet:ignore / errvet:ignore suppression directives, and returns
// the surviving findings sorted by position. A malformed directive (or
// an analyzer error, e.g. an unresolvable lock name in a lockorder
// directive) aborts the run — never silently disables a check.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	dirs, err := directive.ParseFiles(pkg.Fset, pkg.Files)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			Directives: dirs,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if dirs.Ignored(pos, name) {
				return
			}
			out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}
