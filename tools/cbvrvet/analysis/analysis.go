// Package analysis is a stdlib-only re-implementation of the subset of
// golang.org/x/tools/go/analysis that cbvrvet's analyzers need. The
// build environment pins dependencies to the standard library, so the
// x/tools module cannot be vendored; this package keeps the same shape
// (Analyzer, Pass, Diagnostic) so the analyzers would port to the real
// framework by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"cbvr/tools/cbvrvet/directive"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in ignore
	// directives.
	Name string
	// Doc is the one-paragraph description printed by -list.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Directives is the package's parsed //cbvrvet: directive set (lock
	// orders, noio marks, noalloc annotations).
	Directives *directive.Set
	// Report delivers one diagnostic. The runner wraps it with the
	// suppression filter driven by ignore directives.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic, as produced by the runner.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// ObjectOf resolves the object an identifier uses or defines.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// CalleeFunc resolves the static *types.Func a call invokes: a plain
// function, a method (possibly through a selector), or nil for builtins,
// func-typed variables and type conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.ObjectOf(fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}
