// Package vettest is a stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads fixture
// packages from a testdata/src tree, runs analyzers over them, and
// matches diagnostics against `// want "regexp"` comments.
package vettest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cbvr/tools/cbvrvet/analysis"
	"cbvr/tools/cbvrvet/driver"
)

// TestData returns the abs path of the testdata directory next to the
// caller's test file.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// stdImporter type-checks fixture imports. Fixtures only import
// standard-library packages (plus each other is unsupported — keep
// them single-package), so the compiler's export data via go list is
// enough; it is resolved once and cached for all fixture tests.
var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

func stdExportData(t *testing.T, imports []string) map[string]string {
	t.Helper()
	stdOnce.Do(func() {
		stdExports, stdErr = driver.StdExports()
	})
	if stdErr != nil {
		t.Fatalf("resolving std export data: %v", stdErr)
	}
	for _, path := range imports {
		if _, ok := stdExports[path]; !ok && path != "unsafe" {
			t.Fatalf("fixture imports %q, which is not in the preloaded std export set; add it to driver.StdExports", path)
		}
	}
	return stdExports
}

// Run loads testdata/src/<pkgname> fixture packages and checks each
// analyzer's diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgnames ...string) {
	t.Helper()
	for _, name := range pkgnames {
		name := name
		t.Run(name, func(t *testing.T) {
			runOne(t, filepath.Join(testdata, "src", name), name, a)
		})
	}
}

// expectation is one `// want "re"` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
}

// loadFixture parses and type-checks one fixture package directory.
func loadFixture(t *testing.T, dir, name string) *analysis.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, filepath.Join(dir, e.Name()))
		}
	}
	if len(goFiles) == 0 {
		t.Fatalf("no fixture .go files in %s", dir)
	}
	sort.Strings(goFiles)

	fset := token.NewFileSet()
	var files []*ast.File
	var imports []string
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports = append(imports, p)
			}
		}
	}
	exports := stdExportData(t, imports)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: driver.ExportImporter(fset, exports)}
	tpkg, err := tc.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	return &analysis.Package{Path: name, Fset: fset, Files: files, Types: tpkg, Info: info}
}

// RunExpectError loads testdata/src/<pkgname> and asserts that running
// the analyzer fails with an error matching errRe — the path for
// malformed or unresolvable directives, which must fail the lint run
// rather than silently disabling a check.
func RunExpectError(t *testing.T, testdata string, a *analysis.Analyzer, pkgname, errRe string) {
	t.Helper()
	pkg := loadFixture(t, filepath.Join(testdata, "src", pkgname), pkgname)
	_, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err == nil {
		t.Fatalf("running %s on fixture %s: want error matching %q, got none", a.Name, pkgname, errRe)
	}
	re, rerr := regexp.Compile(errRe)
	if rerr != nil {
		t.Fatalf("bad error regexp %q: %v", errRe, rerr)
	}
	if !re.MatchString(err.Error()) {
		t.Fatalf("running %s on fixture %s: error %q does not match %q", a.Name, pkgname, err, errRe)
	}
}

func runOne(t *testing.T, dir, name string, a *analysis.Analyzer) {
	t.Helper()
	pkg := loadFixture(t, dir, name)
	fset, files := pkg.Fset, pkg.Files

	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, name, err)
	}

	wants := collectWants(t, fset, files)

	// Match each finding to an unconsumed want on the same file:line.
	for _, f := range findings {
		matched := false
		for i, w := range wants {
			if w == nil || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				wants[i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f.String())
		}
	}
	for _, w := range wants {
		if w != nil {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text)
		}
	}
}

// wantRe accepts both quote styles analysistest does: double-quoted
// and backquoted pattern strings.
var wantRe = regexp.MustCompile("// want (\".*\"|`.*`)\\s*$")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s: bad want comment %q: %v", fset.Position(c.Pos()), c.Text, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), pat, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: pat})
			}
		}
	}
	return wants
}
