// Command errvet is an errcheck-style analyzer for the storage write
// path: it flags any Sync, Close or Truncate call whose error is silently
// dropped — a bare expression statement, a defer, or an assignment to
// blank — in the packages given on the command line. Durability bugs of
// the fsyncgate family hide exactly behind such calls.
//
// A drop that is genuinely intended (double-close on an already-failed
// open, a simulated crash abandoning state) must carry an
// "errvet:ignore <reason>" comment on the same line to pass.
//
//	go run ./tools/errvet ./internal/vstore ./internal/vstore/faultfs
//
// Exits non-zero when findings exist, so CI can gate on it. Test files
// are skipped: t.Cleanup-style closes are idiomatic there.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// checked are the method names whose dropped errors this tool hunts.
var checked = map[string]bool{"Sync": true, "Close": true, "Truncate": true}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: errvet <package-dir>...")
		os.Exit(2)
	}
	findings := 0
	for _, dir := range os.Args[1:] {
		n, err := vetDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "errvet:", err)
			os.Exit(2)
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "errvet: %d dropped error(s)\n", findings)
		os.Exit(1)
	}
}

func vetDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		n, err := vetFile(filepath.Join(dir, name))
		if err != nil {
			return findings, err
		}
		findings += n
	}
	return findings, nil
}

func vetFile(path string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	// Lines carrying an errvet:ignore annotation are exempt.
	ignored := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "errvet:ignore") {
				ignored[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	findings := 0
	report := func(call *ast.CallExpr, how string) {
		pos := fset.Position(call.Pos())
		if ignored[pos.Line] {
			return
		}
		sel := call.Fun.(*ast.SelectorExpr)
		fmt.Fprintf(os.Stderr, "%s: %s() error dropped (%s); handle it or annotate errvet:ignore\n",
			pos, sel.Sel.Name, how)
		findings++
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call := checkedCall(st.X); call != nil {
				report(call, "bare statement")
			}
		case *ast.DeferStmt:
			if call := checkedCall(st.Call); call != nil {
				report(call, "defer")
			}
		case *ast.AssignStmt:
			// Only flag when every error destination is blank.
			allBlank := true
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if !allBlank {
				return true
			}
			for _, rhs := range st.Rhs {
				if call := checkedCall(rhs); call != nil {
					report(call, "assigned to blank")
				}
			}
		}
		return true
	})
	return findings, nil
}

// checkedCall returns the call expression when expr is a method call to
// one of the hunted names, nil otherwise.
func checkedCall(expr ast.Expr) *ast.CallExpr {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !checked[sel.Sel.Name] {
		return nil
	}
	return call
}
