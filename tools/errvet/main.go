// Command errvet is a thin shim kept for compatibility with existing
// invocations (CI, scripts): the check itself migrated into the
// cbvrvet multichecker as its fifth analyzer. This command runs just
// that analyzer over the given package patterns.
//
//	go run ./tools/errvet ./internal/vstore/...
//
// Prefer `go run ./tools/cbvrvet ./...` (or `make vet`), which runs
// the whole suite.
package main

import (
	"fmt"
	"os"

	"cbvr/tools/cbvrvet/analysis"
	"cbvr/tools/cbvrvet/analyzers"
	"cbvr/tools/cbvrvet/driver"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: errvet <package-pattern>...")
		os.Exit(2)
	}
	n, err := driver.Run(os.Stderr, "", os.Args[1:], []*analysis.Analyzer{analyzers.Errvet})
	if err != nil {
		fmt.Fprintln(os.Stderr, "errvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "errvet: %d dropped error(s)\n", n)
		os.Exit(1)
	}
}
